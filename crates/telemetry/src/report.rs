//! The [`TelemetryReport`]: everything one telemetry-enabled run recorded.

use crate::config::TelemetryConfig;
use crate::metric::MetricId;
use crate::profiler::DispatchProfile;
use crate::registry::MetricsSnapshot;
use crate::trace::TraceLog;
use rtem_sim::trace::TimeSeries;
use std::sync::Arc;

/// The telemetry side of a finished run.
///
/// `snapshots` and `final_snapshot` (and `trace`, when enabled) are
/// deterministic for the seed; `profile` is wall-clock and varies run to
/// run — keep that half out of any golden comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// The configuration the run recorded under.
    pub config: TelemetryConfig,
    /// The periodic snapshots, in strictly increasing grid-time order.
    /// Shared ([`Arc`]) with the `MetricsSnapshot` notifications the run
    /// emitted, so each grid point is stamped once and never copied.
    pub snapshots: Vec<Arc<MetricsSnapshot>>,
    /// One more snapshot stamped at collection time (the run horizon),
    /// covering the whole run.
    pub final_snapshot: MetricsSnapshot,
    /// The structured trace, when [`TelemetryConfig::trace`] was set.
    pub trace: Option<TraceLog>,
    /// The wall-clock dispatch profile, when
    /// [`TelemetryConfig::profile`] was set.
    pub profile: Option<DispatchProfile>,
}

impl TelemetryReport {
    /// One fleet-wide metric over the snapshot grid, as a [`TimeSeries`]
    /// (the final snapshot is not included — it may share its stamp with
    /// the last grid point).
    pub fn fleet_series(&self, id: MetricId) -> TimeSeries {
        let mut series = TimeSeries::new(format!("fleet {}", id.label()));
        for snapshot in &self.snapshots {
            series.push(snapshot.at, snapshot.fleet.get(id) as f64);
        }
        series
    }

    /// One network's metric over the snapshot grid, as a [`TimeSeries`].
    /// Snapshots predating the network contribute no sample.
    pub fn network_series(&self, network: u32, id: MetricId) -> TimeSeries {
        let mut series = TimeSeries::new(format!("net-{network} {}", id.label()));
        for snapshot in &self.snapshots {
            if let Some(scope) = snapshot.network(network) {
                series.push(snapshot.at, scope.get(id) as f64);
            }
        }
        series
    }

    /// Network ids present in the final snapshot.
    pub fn networks(&self) -> impl Iterator<Item = u32> + '_ {
        self.final_snapshot.networks.iter().map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use rtem_sim::time::SimTime;

    fn report_with_two_snapshots() -> TelemetryReport {
        let mut registry = MetricsRegistry::new();
        registry.fleet_mut().set(MetricId::BrokerPublishes, 5);
        registry
            .network_mut(1)
            .set(MetricId::BrokerSessionQueueDepth, 2);
        let first = registry.snapshot(SimTime::from_secs(10), 0);
        registry.fleet_mut().set(MetricId::BrokerPublishes, 9);
        registry
            .network_mut(1)
            .set(MetricId::BrokerSessionQueueDepth, 1);
        let second = registry.snapshot(SimTime::from_secs(20), 1);
        let final_snapshot = registry.snapshot(SimTime::from_secs(25), 2);
        TelemetryReport {
            config: TelemetryConfig::default(),
            snapshots: vec![Arc::new(first), Arc::new(second)],
            final_snapshot,
            trace: None,
            profile: None,
        }
    }

    #[test]
    fn series_track_the_snapshot_grid() {
        let report = report_with_two_snapshots();
        let fleet = report.fleet_series(MetricId::BrokerPublishes);
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet.samples()[0].value, 5.0);
        assert_eq!(fleet.samples()[1].value, 9.0);
        let queue = report.network_series(1, MetricId::BrokerSessionQueueDepth);
        assert_eq!(queue.samples()[1].value, 1.0);
        assert!(report
            .network_series(9, MetricId::BrokerSessionQueueDepth)
            .is_empty());
        assert_eq!(report.networks().collect::<Vec<_>>(), vec![1]);
    }
}
