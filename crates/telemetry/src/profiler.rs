//! Wall-clock self-profiling of the event-dispatch loop.
//!
//! Everything here measures *host* time and is therefore
//! non-deterministic by nature. The profiler is kept strictly outside the
//! deterministic state: it observes how long each dispatch took, it never
//! influences what the dispatch does, and its results are reported apart
//! from the snapshot stream the goldens could see.

/// A log₂-bucketed histogram of nanosecond durations.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))` ns (bucket 0 also takes
/// zero). 48 buckets cover everything up to ~3.25 days per event, which is
/// comfortably beyond any dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Number of log₂ buckets.
    pub const BUCKETS: usize = 48;

    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one duration in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        let bucket =
            (64 - u64::leading_zeros(nanos.max(1)) as usize - 1).min(Histogram::BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += nanos;
        self.max = self.max.max(nanos);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Largest sample, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket counts; bucket `i` spans `[2^i, 2^(i+1))` ns.
    pub fn buckets(&self) -> &[u64; Histogram::BUCKETS] {
        &self.buckets
    }

    /// Upper bound (exclusive, ns) of the smallest bucket prefix holding at
    /// least `fraction` of the samples — a conservative percentile read on
    /// the log₂ grid. `None` when empty.
    pub fn quantile_upper_bound_ns(&self, fraction: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let threshold = (self.count as f64 * fraction.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= threshold.max(1) {
                return Some(1u64 << (i + 1));
            }
        }
        Some(u64::MAX)
    }
}

/// The live profiler: one [`Histogram`] per event kind.
///
/// Kind labels come from the caller (the world's event-kind table), so the
/// profiler stays independent of the simulation crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchProfiler {
    labels: &'static [&'static str],
    histograms: Vec<Histogram>,
    lanes: Vec<Histogram>,
}

impl DispatchProfiler {
    /// A profiler with one histogram per label.
    pub fn new(labels: &'static [&'static str]) -> DispatchProfiler {
        DispatchProfiler {
            labels,
            histograms: vec![Histogram::new(); labels.len()],
            lanes: Vec::new(),
        }
    }

    /// Records one dispatch of kind `kind` (an index into the label table)
    /// that took `nanos` wall-clock nanoseconds.
    pub fn record(&mut self, kind: usize, nanos: u64) {
        self.histograms[kind].record(nanos);
    }

    /// Records the wall-clock time one worker lane spent computing a batch
    /// of parallel dispatches. Lanes grow on demand, so a single profiler
    /// serves runs of any shard count.
    pub fn record_lane(&mut self, lane: usize, nanos: u64) {
        if lane >= self.lanes.len() {
            self.lanes.resize(lane + 1, Histogram::new());
        }
        self.lanes[lane].record(nanos);
    }

    /// Total dispatches recorded across all kinds.
    pub fn total_count(&self) -> u64 {
        self.histograms.iter().map(Histogram::count).sum()
    }

    /// Freezes the profiler into its report form, dropping kinds that never
    /// fired and lanes that never ran.
    pub fn finish(self) -> DispatchProfile {
        DispatchProfile {
            entries: self
                .labels
                .iter()
                .zip(self.histograms)
                .filter(|(_, h)| h.count() > 0)
                .map(|(&label, histogram)| KindProfile { label, histogram })
                .collect(),
            lanes: self
                .lanes
                .into_iter()
                .enumerate()
                .filter(|(_, h)| h.count() > 0)
                .map(|(lane, histogram)| LaneProfile { lane, histogram })
                .collect(),
        }
    }
}

/// Wall-clock dispatch cost of one event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindProfile {
    /// The event kind's label.
    pub label: &'static str,
    /// Its dispatch-duration histogram.
    pub histogram: Histogram,
}

/// Wall-clock batch-compute cost of one worker lane of the sharded
/// event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneProfile {
    /// The lane's index (0-based; lane 0 is the dispatcher thread).
    pub lane: usize,
    /// Per-batch wall-clock durations the lane spent computing.
    pub histogram: Histogram,
}

/// The frozen profile: per-kind histograms of wall-clock dispatch cost,
/// kinds that fired only, in the world's kind order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DispatchProfile {
    /// One entry per event kind that dispatched at least once.
    pub entries: Vec<KindProfile>,
    /// One entry per worker lane that computed at least one parallel batch.
    /// Empty in single-shard runs, where no batch compute happens off the
    /// dispatcher thread.
    pub lanes: Vec<LaneProfile>,
}

impl DispatchProfile {
    /// Total dispatches across all kinds.
    pub fn total_count(&self) -> u64 {
        self.entries.iter().map(|e| e.histogram.count()).sum()
    }

    /// Total wall-clock nanoseconds across all kinds.
    pub fn total_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.histogram.sum_ns()).sum()
    }

    /// The entry for one kind label.
    pub fn kind(&self, label: &str) -> Option<&KindProfile> {
        self.entries.iter().find(|e| e.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(1023); // bucket 9
        h.record(1024); // bucket 10
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 1024);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.buckets()[10], 1);
        assert!((h.mean_ns() - (1 + 2 + 1023 + 1024) as f64 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_upper_bound_walks_the_buckets() {
        let mut h = Histogram::new();
        for _ in 0..9 {
            h.record(10); // bucket 3, upper bound 16
        }
        h.record(1 << 20); // bucket 20
        assert_eq!(h.quantile_upper_bound_ns(0.5), Some(16));
        assert_eq!(h.quantile_upper_bound_ns(1.0), Some(1 << 21));
        assert_eq!(Histogram::new().quantile_upper_bound_ns(0.5), None);
    }

    #[test]
    fn profiler_reports_only_fired_kinds() {
        static LABELS: [&str; 3] = ["a", "b", "c"];
        let mut profiler = DispatchProfiler::new(&LABELS);
        profiler.record(0, 100);
        profiler.record(0, 200);
        profiler.record(2, 50);
        assert_eq!(profiler.total_count(), 3);
        let profile = profiler.finish();
        assert_eq!(profile.entries.len(), 2);
        assert_eq!(profile.entries[0].label, "a");
        assert_eq!(profile.entries[0].histogram.count(), 2);
        assert!(profile.kind("b").is_none());
        assert_eq!(profile.total_ns(), 350);
        assert!(profile.lanes.is_empty(), "no lanes recorded");
    }

    #[test]
    fn lane_histograms_grow_on_demand_and_skip_idle_lanes() {
        static LABELS: [&str; 1] = ["a"];
        let mut profiler = DispatchProfiler::new(&LABELS);
        profiler.record_lane(0, 500);
        profiler.record_lane(3, 700);
        profiler.record_lane(3, 900);
        let profile = profiler.finish();
        // Lanes 1 and 2 never ran, so only two entries survive.
        assert_eq!(profile.lanes.len(), 2);
        assert_eq!(profile.lanes[0].lane, 0);
        assert_eq!(profile.lanes[0].histogram.count(), 1);
        assert_eq!(profile.lanes[1].lane, 3);
        assert_eq!(profile.lanes[1].histogram.count(), 2);
        assert_eq!(profile.lanes[1].histogram.sum_ns(), 1600);
    }
}
