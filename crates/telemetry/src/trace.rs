//! Structured trace capture and Chrome trace-event export.
//!
//! The log records two shapes: a *span* per dispatched scheduler event and
//! an *instant* per world notification. Timestamps are **simulated**
//! microseconds — never wall clock — so a trace of the same seed is
//! byte-stable across runs and machines (wall-clock cost lives in the
//! [`DispatchProfiler`](crate::DispatchProfiler) instead). Capacity is
//! bounded keep-first: once full, later events are counted as dropped and
//! the retained prefix stays deterministic.

use std::fmt::Write as _;

/// Chrome trace-event phase of one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete event (`"ph":"X"`): one dispatched scheduler event.
    Complete,
    /// An instant event (`"ph":"i"`): one world notification.
    Instant,
}

impl TracePhase {
    fn code(self) -> char {
        match self {
            TracePhase::Complete => 'X',
            TracePhase::Instant => 'i',
        }
    }
}

/// One recorded trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (a scheduler event kind or a notification label).
    pub name: &'static str,
    /// Category: `"scheduler"` for spans, `"notification"` for instants.
    pub cat: &'static str,
    /// Phase (span or instant).
    pub ph: TracePhase,
    /// Simulated timestamp, microseconds.
    pub ts_us: u64,
    /// Span duration in simulated microseconds (0: dispatch is
    /// instantaneous in sim time; the span marks *when*, the profiler
    /// measures *how long*).
    pub dur_us: u64,
}

/// A bounded, deterministic trace log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    /// An empty log that keeps at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> TraceLog {
        TraceLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records a scheduler-event span at simulated time `ts_us`.
    pub fn push_span(&mut self, name: &'static str, ts_us: u64) {
        self.push(TraceEvent {
            name,
            cat: "scheduler",
            ph: TracePhase::Complete,
            ts_us,
            dur_us: 0,
        });
    }

    /// Records a notification instant at simulated time `ts_us`.
    pub fn push_instant(&mut self, name: &'static str, ts_us: u64) {
        self.push(TraceEvent {
            name,
            cat: "notification",
            ph: TracePhase::Instant,
            ts_us,
            dur_us: 0,
        });
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(event);
    }

    /// The retained events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events discarded after the log filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn write_event_json(out: &mut String, event: &TraceEvent) {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1}}",
            event.name,
            event.cat,
            event.ph.code(),
            event.ts_us,
            event.dur_us,
        );
    }

    /// Renders the log in Chrome trace-event JSON object format — load the
    /// string into `chrome://tracing` or Perfetto as-is. The
    /// `droppedEvents` metadatum carries the overflow count.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\"traceEvents\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            TraceLog::write_event_json(&mut out, event);
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":{}}}",
            self.dropped
        );
        out
    }

    /// Renders the log as JSONL: one trace-event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for event in &self.events {
            TraceLog::write_event_json(&mut out, event);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_the_log_and_counts_drops() {
        let mut log = TraceLog::with_capacity(2);
        log.push_span("a", 1);
        log.push_instant("b", 2);
        log.push_span("c", 3);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.events()[0].name, "a");
        assert_eq!(log.events()[1].ph, TracePhase::Instant);
    }

    #[test]
    fn chrome_json_has_envelope_and_drop_count() {
        let mut log = TraceLog::with_capacity(1);
        log.push_span("MeasureTick", 1500);
        log.push_span("overflow", 1501);
        let json = log.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"MeasureTick\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1500"));
        assert!(json.ends_with("\"droppedEvents\":1}"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut log = TraceLog::with_capacity(8);
        log.push_span("a", 1);
        log.push_instant("b", 2);
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines[1].contains("\"ph\":\"i\""));
    }
}
