//! The typed metric vocabulary: [`MetricId`] and the flat [`MetricScope`]
//! it indexes.
//!
//! Every observable quantity the world exports has one stable id. A scope
//! is a fixed `u64` array indexed by the id, so reading, writing and
//! copying a whole scope is branch-free and allocation-free — the registry
//! holds one scope for the fleet and one per network.

/// Identifier of one metric the world exports.
///
/// Counters are cumulative over the run (monotone between snapshots);
/// gauges are instantaneous at snapshot time. The per-network scopes carry
/// the network-attributable subset (membership, aggregator accounting,
/// member link and session-queue totals); everything is present in the
/// fleet scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricId {
    /// Messages accepted for publication by the broker (counter).
    BrokerPublishes,
    /// Messages delivered to a subscriber session (counter).
    BrokerDelivered,
    /// Messages dropped by the access link's loss model (counter).
    BrokerDropped,
    /// Messages queued for a disconnected durable session (counter).
    BrokerQueuedForResume,
    /// Queued messages replayed on session resume (counter).
    BrokerResumed,
    /// Retained messages replayed to late subscribers (counter).
    BrokerRetainedReplays,
    /// QoS 2 handshake frames (PUBREC/PUBREL/PUBCOMP) exchanged (counter).
    BrokerQos2HandshakeFrames,
    /// Duplicate QoS 2 publishes suppressed by packet-id dedup (counter).
    BrokerQos2DupSuppressed,
    /// Messages sitting in session queues right now (gauge).
    BrokerSessionQueueDepth,
    /// Transmissions offered to access + backhaul links (counter).
    LinkPacketsOffered,
    /// Transmissions the loss models dropped (counter).
    LinkPacketsLost,
    /// Payload bytes that survived their link (counter).
    LinkBytesDelivered,
    /// Payload bytes lost in transit (counter).
    LinkBytesLost,
    /// Link-family faults currently degrading some link (gauge).
    LinkFaultsActive,
    /// World events dispatched by the scheduler loop (counter).
    SchedulerEventsDispatched,
    /// Deepest the event queue has been at a dispatch (gauge, high-water).
    SchedulerQueueHighWater,
    /// Device measurement-timer ticks dispatched (counter).
    DeviceMeasureTicks,
    /// Records sitting in device store-and-forward buffers (gauge).
    DeviceBufferedRecords,
    /// Device reboots, crash-recovery included (counter).
    DeviceReboots,
    /// Devices currently crashed (gauge).
    DeviceCrashedNow,
    /// Buffered records lost to device crashes (counter).
    DeviceRecordsLostToCrashes,
    /// Devices currently registered with the scope's network(s) (gauge).
    NetworkMembers,
    /// Consumption reports accepted by aggregators (counter).
    AggReportsAccepted,
    /// Reports from non-members negatively acknowledged (counter).
    AggReportsNacked,
    /// Individual measurement records accepted into a window (counter).
    AggRecordsAccepted,
    /// Records dropped by retransmit/replay duplicate filters (counter).
    AggRecordsDuplicateFiltered,
    /// Verification-window verdicts produced (counter).
    AggVerdicts,
    /// Verification windows that closed anomalous (counter).
    AggAnomalousWindows,
    /// Consumption reports framed as real-protocol telegrams (counter).
    CodecTelegramsSent,
    /// Telegrams the receiving aggregator parsed successfully (counter).
    CodecTelegramsParsed,
    /// Telegrams rejected with a codec error (counter; see
    /// [`CodecFailureTable`](crate::CodecFailureTable) for the by-family ×
    /// by-kind breakdown).
    CodecParseFailures,
    /// Reports mutated by an active corruption fault pre-transmit (counter).
    CodecCorruptedInjected,
    /// Fleet commands published by the manager session (counter).
    ControlCommandsPublished,
    /// Command deliveries a device firmware accepted and executed (counter).
    ControlCommandsApplied,
    /// Command deliveries a device firmware rejected (counter).
    ControlCommandsRejected,
    /// Acknowledgments delivered back to the manager (counter).
    ControlCommandsAcked,
}

impl MetricId {
    /// Number of metric ids (the length of a [`MetricScope`]).
    pub const COUNT: usize = 36;

    /// Every id, in declaration (= scope index) order.
    pub const ALL: [MetricId; MetricId::COUNT] = [
        MetricId::BrokerPublishes,
        MetricId::BrokerDelivered,
        MetricId::BrokerDropped,
        MetricId::BrokerQueuedForResume,
        MetricId::BrokerResumed,
        MetricId::BrokerRetainedReplays,
        MetricId::BrokerQos2HandshakeFrames,
        MetricId::BrokerQos2DupSuppressed,
        MetricId::BrokerSessionQueueDepth,
        MetricId::LinkPacketsOffered,
        MetricId::LinkPacketsLost,
        MetricId::LinkBytesDelivered,
        MetricId::LinkBytesLost,
        MetricId::LinkFaultsActive,
        MetricId::SchedulerEventsDispatched,
        MetricId::SchedulerQueueHighWater,
        MetricId::DeviceMeasureTicks,
        MetricId::DeviceBufferedRecords,
        MetricId::DeviceReboots,
        MetricId::DeviceCrashedNow,
        MetricId::DeviceRecordsLostToCrashes,
        MetricId::NetworkMembers,
        MetricId::AggReportsAccepted,
        MetricId::AggReportsNacked,
        MetricId::AggRecordsAccepted,
        MetricId::AggRecordsDuplicateFiltered,
        MetricId::AggVerdicts,
        MetricId::AggAnomalousWindows,
        MetricId::CodecTelegramsSent,
        MetricId::CodecTelegramsParsed,
        MetricId::CodecParseFailures,
        MetricId::CodecCorruptedInjected,
        MetricId::ControlCommandsPublished,
        MetricId::ControlCommandsApplied,
        MetricId::ControlCommandsRejected,
        MetricId::ControlCommandsAcked,
    ];

    /// Position of this id in a [`MetricScope`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label for CSV/JSON columns.
    pub fn label(self) -> &'static str {
        match self {
            MetricId::BrokerPublishes => "broker_publishes",
            MetricId::BrokerDelivered => "broker_delivered",
            MetricId::BrokerDropped => "broker_dropped",
            MetricId::BrokerQueuedForResume => "broker_queued_for_resume",
            MetricId::BrokerResumed => "broker_resumed",
            MetricId::BrokerRetainedReplays => "broker_retained_replays",
            MetricId::BrokerQos2HandshakeFrames => "broker_qos2_handshake_frames",
            MetricId::BrokerQos2DupSuppressed => "broker_qos2_dup_suppressed",
            MetricId::BrokerSessionQueueDepth => "broker_session_queue_depth",
            MetricId::LinkPacketsOffered => "link_packets_offered",
            MetricId::LinkPacketsLost => "link_packets_lost",
            MetricId::LinkBytesDelivered => "link_bytes_delivered",
            MetricId::LinkBytesLost => "link_bytes_lost",
            MetricId::LinkFaultsActive => "link_faults_active",
            MetricId::SchedulerEventsDispatched => "scheduler_events_dispatched",
            MetricId::SchedulerQueueHighWater => "scheduler_queue_high_water",
            MetricId::DeviceMeasureTicks => "device_measure_ticks",
            MetricId::DeviceBufferedRecords => "device_buffered_records",
            MetricId::DeviceReboots => "device_reboots",
            MetricId::DeviceCrashedNow => "device_crashed_now",
            MetricId::DeviceRecordsLostToCrashes => "device_records_lost_to_crashes",
            MetricId::NetworkMembers => "network_members",
            MetricId::AggReportsAccepted => "agg_reports_accepted",
            MetricId::AggReportsNacked => "agg_reports_nacked",
            MetricId::AggRecordsAccepted => "agg_records_accepted",
            MetricId::AggRecordsDuplicateFiltered => "agg_records_duplicate_filtered",
            MetricId::AggVerdicts => "agg_verdicts",
            MetricId::AggAnomalousWindows => "agg_anomalous_windows",
            MetricId::CodecTelegramsSent => "codec_telegrams_sent",
            MetricId::CodecTelegramsParsed => "codec_telegrams_parsed",
            MetricId::CodecParseFailures => "codec_parse_failures",
            MetricId::CodecCorruptedInjected => "codec_corrupted_injected",
            MetricId::ControlCommandsPublished => "control_commands_published",
            MetricId::ControlCommandsApplied => "control_commands_applied",
            MetricId::ControlCommandsRejected => "control_commands_rejected",
            MetricId::ControlCommandsAcked => "control_commands_acked",
        }
    }
}

/// One flat scope of metric values: a fixed array indexed by [`MetricId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricScope {
    values: [u64; MetricId::COUNT],
}

impl Default for MetricScope {
    fn default() -> Self {
        MetricScope {
            values: [0; MetricId::COUNT],
        }
    }
}

impl MetricScope {
    /// An all-zero scope.
    pub fn new() -> MetricScope {
        MetricScope::default()
    }

    /// Reads one metric.
    pub fn get(&self, id: MetricId) -> u64 {
        self.values[id.index()]
    }

    /// Overwrites one metric (the usual way to publish a pulled counter or
    /// a gauge).
    pub fn set(&mut self, id: MetricId, value: u64) {
        self.values[id.index()] = value;
    }

    /// Adds to one metric (summing a quantity over several sources).
    pub fn add(&mut self, id: MetricId, delta: u64) {
        self.values[id.index()] += delta;
    }

    /// Zeroes every metric.
    pub fn reset(&mut self) {
        self.values = [0; MetricId::COUNT];
    }

    /// Iterates `(id, value)` pairs in scope-index order.
    pub fn iter(&self) -> impl Iterator<Item = (MetricId, u64)> + '_ {
        MetricId::ALL.into_iter().map(|id| (id, self.get(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_index_in_order() {
        assert_eq!(MetricId::ALL.len(), MetricId::COUNT);
        for (i, id) in MetricId::ALL.into_iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            MetricId::ALL.iter().map(|id| id.label()).collect();
        assert_eq!(labels.len(), MetricId::COUNT);
    }

    #[test]
    fn scope_set_add_get_round_trip() {
        let mut scope = MetricScope::new();
        scope.set(MetricId::BrokerPublishes, 7);
        scope.add(MetricId::BrokerPublishes, 3);
        assert_eq!(scope.get(MetricId::BrokerPublishes), 10);
        assert_eq!(scope.get(MetricId::BrokerDropped), 0);
        scope.reset();
        assert!(scope.iter().all(|(_, v)| v == 0));
    }
}
