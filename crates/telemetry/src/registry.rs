//! The [`MetricsRegistry`] and the [`MetricsSnapshot`]s it stamps out.
//!
//! The registry is a *pull* sink: the world resets it and re-fills it from
//! the subsystems' own cumulative counters each time a snapshot is due, so
//! the hot paths carry no per-event telemetry cost beyond the counters
//! they already maintain. A snapshot is a plain copy of the filled scopes
//! with a sim-time stamp — deterministic for a given seed, whatever the
//! snapshot interval.

use crate::metric::{MetricId, MetricScope};
use rtem_codecs::{CodecErrorKind, MeterKind};
use rtem_sim::time::SimTime;

/// Telegram parse failures broken down by protocol family × error kind.
///
/// Rows follow [`MeterKind::ALL`] order (indexed by [`MeterKind::code`]),
/// columns follow [`CodecErrorKind::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodecFailureTable {
    counts: [[u64; CodecErrorKind::COUNT]; MeterKind::ALL.len()],
}

impl CodecFailureTable {
    /// An all-zero table.
    pub fn new() -> CodecFailureTable {
        CodecFailureTable::default()
    }

    /// Counts one parse failure of `kind` against the family whose
    /// transport discriminant is `family_code` (unknown discriminants land
    /// on the `Internal` row, which no real parse can otherwise reach).
    pub fn record(&mut self, family_code: u8, kind: CodecErrorKind) {
        let row = MeterKind::from_code(family_code)
            .map(|k| k.code() as usize)
            .unwrap_or(0);
        self.counts[row][kind.index()] += 1;
    }

    /// Failures of one family × kind cell.
    pub fn get(&self, family: MeterKind, kind: CodecErrorKind) -> u64 {
        self.counts[family.code() as usize][kind.index()]
    }

    /// Failures of one family, all kinds.
    pub fn family_total(&self, family: MeterKind) -> u64 {
        self.counts[family.code() as usize].iter().sum()
    }

    /// Failures of one kind, all families.
    pub fn kind_total(&self, kind: CodecErrorKind) -> u64 {
        self.counts.iter().map(|row| row[kind.index()]).sum()
    }

    /// All failures.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Iterates the non-zero cells as `(family, kind, count)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (MeterKind, CodecErrorKind, u64)> + '_ {
        MeterKind::ALL.into_iter().flat_map(move |family| {
            CodecErrorKind::ALL.into_iter().filter_map(move |kind| {
                let count = self.get(family, kind);
                (count > 0).then_some((family, kind, count))
            })
        })
    }
}

/// The pull-model metrics sink: one fleet-wide [`MetricScope`] plus one
/// scope per network, keyed by the network's aggregator address.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    fleet: MetricScope,
    /// Per-network scopes, sorted by network id. A handful of entries at
    /// most, so a sorted vec beats a map on both lookup and reuse.
    networks: Vec<(u32, MetricScope)>,
    codec_failures: CodecFailureTable,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The fleet-wide scope.
    pub fn fleet(&self) -> &MetricScope {
        &self.fleet
    }

    /// Mutable fleet-wide scope.
    pub fn fleet_mut(&mut self) -> &mut MetricScope {
        &mut self.fleet
    }

    /// The scope of one network, if it has been written this fill.
    pub fn network(&self, network: u32) -> Option<&MetricScope> {
        self.networks
            .binary_search_by_key(&network, |(id, _)| *id)
            .ok()
            .map(|i| &self.networks[i].1)
    }

    /// Mutable scope of one network, created zeroed on first touch.
    pub fn network_mut(&mut self, network: u32) -> &mut MetricScope {
        match self.networks.binary_search_by_key(&network, |(id, _)| *id) {
            Ok(i) => &mut self.networks[i].1,
            Err(i) => {
                self.networks.insert(i, (network, MetricScope::new()));
                &mut self.networks[i].1
            }
        }
    }

    /// The codec failure breakdown.
    pub fn codec_failures(&self) -> &CodecFailureTable {
        &self.codec_failures
    }

    /// Overwrites the codec failure breakdown (pulled from the world's
    /// always-on table at fill time).
    pub fn set_codec_failures(&mut self, table: CodecFailureTable) {
        self.codec_failures = table;
    }

    /// Zeroes every scope, keeping the per-network allocations for reuse.
    pub fn reset(&mut self) {
        self.fleet.reset();
        for (_, scope) in &mut self.networks {
            scope.reset();
        }
        self.codec_failures = CodecFailureTable::new();
    }

    /// Stamps the current fill as an immutable [`MetricsSnapshot`].
    pub fn snapshot(&self, at: SimTime, seq: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            at,
            seq,
            fleet: self.fleet,
            networks: self.networks.clone(),
            codec_failures: self.codec_failures,
        }
    }
}

/// One immutable, timestamped copy of the registry.
///
/// Emitted periodically on the snapshot grid (and once more at collection
/// time as the run's final snapshot). Contents are a pure function of the
/// seed and the stamp time — bit-identical across runs and across
/// differently-sliced `run_until` schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The sim time the snapshot covers: every event dispatched at or
    /// before `at` is reflected, nothing after is.
    pub at: SimTime,
    /// Position in the run's snapshot stream (0-based).
    pub seq: u64,
    /// Fleet-wide metric values.
    pub fleet: MetricScope,
    /// Per-network metric values, sorted by network id.
    pub networks: Vec<(u32, MetricScope)>,
    /// Telegram parse failures by protocol family × error kind.
    pub codec_failures: CodecFailureTable,
}

impl MetricsSnapshot {
    /// The scope of one network, if the network existed at stamp time.
    pub fn network(&self, network: u32) -> Option<&MetricScope> {
        self.networks
            .binary_search_by_key(&network, |(id, _)| *id)
            .ok()
            .map(|i| &self.networks[i].1)
    }

    /// Reads one fleet-wide metric.
    pub fn get(&self, id: MetricId) -> u64 {
        self.fleet.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_scopes_are_created_sorted() {
        let mut registry = MetricsRegistry::new();
        registry.network_mut(3).set(MetricId::NetworkMembers, 3);
        registry.network_mut(1).set(MetricId::NetworkMembers, 1);
        registry.network_mut(2).set(MetricId::NetworkMembers, 2);
        let snapshot = registry.snapshot(SimTime::from_secs(1), 0);
        let ids: Vec<u32> = snapshot.networks.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(
            snapshot.network(2).unwrap().get(MetricId::NetworkMembers),
            2
        );
        assert!(snapshot.network(9).is_none());
    }

    #[test]
    fn reset_keeps_network_entries_but_zeroes_them() {
        let mut registry = MetricsRegistry::new();
        registry.fleet_mut().add(MetricId::BrokerPublishes, 5);
        registry.network_mut(1).add(MetricId::AggReportsAccepted, 2);
        registry.reset();
        assert_eq!(registry.fleet().get(MetricId::BrokerPublishes), 0);
        assert_eq!(
            registry
                .network(1)
                .unwrap()
                .get(MetricId::AggReportsAccepted),
            0,
            "the entry survives reset for allocation reuse"
        );
    }

    #[test]
    fn codec_failure_table_totals_line_up() {
        let mut table = CodecFailureTable::new();
        table.record(MeterKind::Sml.code(), CodecErrorKind::Checksum);
        table.record(MeterKind::Sml.code(), CodecErrorKind::Checksum);
        table.record(MeterKind::ModbusRtu.code(), CodecErrorKind::Framing);
        table.record(99, CodecErrorKind::Semantic); // unknown discriminant
        assert_eq!(table.get(MeterKind::Sml, CodecErrorKind::Checksum), 2);
        assert_eq!(table.family_total(MeterKind::Sml), 2);
        assert_eq!(table.kind_total(CodecErrorKind::Framing), 1);
        assert_eq!(table.family_total(MeterKind::Internal), 1);
        assert_eq!(table.total(), 4);
        assert_eq!(table.iter_nonzero().count(), 3);
    }
}
