//! The [`TelemetryConfig`] knob set.

use rtem_sim::time::SimDuration;

/// What a telemetry-enabled run records.
///
/// The default records periodic metrics snapshots only; opt into the
/// Chrome-format trace and the wall-clock dispatch profiler per run (or
/// take [`full`](TelemetryConfig::full) for everything, the configuration
/// the `obs_overhead` bench gates).
///
/// Whatever the configuration, the *simulation outcome* is bit-identical
/// with telemetry on, off, or at any snapshot interval — the registry only
/// pulls counters the subsystems already maintain, and the profiler's wall
/// clock never reaches simulated state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sim-time spacing of the periodic
    /// [`MetricsSnapshot`](crate::MetricsSnapshot) grid. The first
    /// snapshot lands one
    /// interval in; a snapshot at grid time `t` covers every event
    /// dispatched at or before `t`. Must be non-zero.
    pub snapshot_interval: SimDuration,
    /// Record the structured trace: one span per dispatched scheduler
    /// event and one instant per world notification, on simulated time.
    pub trace: bool,
    /// Trace events kept before the log starts counting drops instead
    /// (keep-first, so the retained prefix is deterministic).
    pub trace_capacity: usize,
    /// Histogram wall-clock event-dispatch cost by event kind.
    pub profile: bool,
    /// Profile every `N`-th dispatch instead of all of them. Reading the
    /// wall clock twice per event is the single largest telemetry cost
    /// (~90 ns per sample on a typical vDSO clock, against dispatches
    /// averaging ~1 µs), so the profiler samples on a deterministic
    /// stride: which dispatches get timed depends only on the dispatch
    /// ordinal, never on the clock. Must be non-zero; `1` times
    /// everything.
    pub profile_sample_stride: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            snapshot_interval: SimDuration::from_secs(10),
            trace: false,
            trace_capacity: 65_536,
            profile: false,
            profile_sample_stride: 8,
        }
    }
}

impl TelemetryConfig {
    /// Everything on: snapshots, trace and profiler. The configuration the
    /// committed `BENCH_obs.json` overhead gate runs.
    pub fn full() -> TelemetryConfig {
        TelemetryConfig {
            trace: true,
            profile: true,
            ..TelemetryConfig::default()
        }
    }

    /// Sets the snapshot interval.
    pub fn with_snapshot_interval(mut self, interval: SimDuration) -> TelemetryConfig {
        self.snapshot_interval = interval;
        self
    }

    /// Enables or disables the structured trace.
    pub fn with_trace(mut self, trace: bool) -> TelemetryConfig {
        self.trace = trace;
        self
    }

    /// Sets the trace capacity (events kept before drop counting starts).
    pub fn with_trace_capacity(mut self, capacity: usize) -> TelemetryConfig {
        self.trace_capacity = capacity;
        self
    }

    /// Enables or disables the wall-clock dispatch profiler.
    pub fn with_profile(mut self, profile: bool) -> TelemetryConfig {
        self.profile = profile;
        self
    }

    /// Sets the profiler's sampling stride (`1` times every dispatch).
    pub fn with_profile_sample_stride(mut self, stride: u32) -> TelemetryConfig {
        self.profile_sample_stride = stride;
        self
    }

    /// `true` when the knobs are coherent (non-zero snapshot interval and
    /// sampling stride).
    pub fn is_valid(&self) -> bool {
        !self.snapshot_interval.is_zero() && self.profile_sample_stride > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_snapshots_only_and_valid() {
        let config = TelemetryConfig::default();
        assert!(!config.trace);
        assert!(!config.profile);
        assert!(config.is_valid());
    }

    #[test]
    fn full_turns_everything_on() {
        let config = TelemetryConfig::full();
        assert!(config.trace);
        assert!(config.profile);
    }

    #[test]
    fn zero_interval_is_invalid() {
        let config = TelemetryConfig::default().with_snapshot_interval(SimDuration::ZERO);
        assert!(!config.is_valid());
    }

    #[test]
    fn zero_profile_stride_is_invalid() {
        let config = TelemetryConfig::full().with_profile_sample_stride(0);
        assert!(!config.is_valid());
        assert!(config.with_profile_sample_stride(1).is_valid());
    }
}
