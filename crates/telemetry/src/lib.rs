//! Observability primitives for the rtem workspace.
//!
//! The simulation core is *deterministic*: two runs of the same seed must
//! be bit-identical, and that property is locked by committed SHA-256
//! goldens. Telemetry therefore splits into two strictly separated halves:
//!
//! * **Deterministic metrics** — the typed, allocation-light
//!   [`MetricsRegistry`] of counters and gauges keyed by the [`MetricId`]
//!   enum, with a fleet-wide scope and one scope per network. The world
//!   *pulls* cumulative subsystem counters (broker, links, scheduler,
//!   devices, aggregators, codecs, control plane) into the registry at
//!   snapshot time, so enabling telemetry never adds RNG draws, events or
//!   state the simulation outcome could observe. Periodic
//!   [`MetricsSnapshot`]s are emitted on a fixed sim-time grid and are
//!   themselves deterministic.
//! * **Wall-clock profiling** — the [`DispatchProfiler`] histogramming
//!   real (host) event-dispatch cost by event kind. Wall time is
//!   non-deterministic by nature, so it lives outside the snapshot stream
//!   and never feeds back into simulated state.
//!
//! The [`TraceLog`] sits with the deterministic half: its spans and
//! instants carry *simulated* timestamps only, so a Chrome trace of the
//! same seed is stable across runs and machines.
//!
//! ```
//! use rtem_telemetry::{MetricId, MetricsRegistry};
//! use rtem_sim::time::SimTime;
//!
//! let mut registry = MetricsRegistry::new();
//! registry.fleet_mut().add(MetricId::BrokerPublishes, 3);
//! registry.network_mut(1).set(MetricId::NetworkMembers, 4);
//! let snapshot = registry.snapshot(SimTime::from_secs(10), 0);
//! assert_eq!(snapshot.fleet.get(MetricId::BrokerPublishes), 3);
//! assert_eq!(snapshot.network(1).unwrap().get(MetricId::NetworkMembers), 4);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod metric;
pub mod profiler;
pub mod registry;
pub mod report;
pub mod trace;

pub use config::TelemetryConfig;
pub use metric::{MetricId, MetricScope};
pub use profiler::{DispatchProfile, DispatchProfiler, Histogram, KindProfile, LaneProfile};
pub use registry::{CodecFailureTable, MetricsRegistry, MetricsSnapshot};
pub use report::TelemetryReport;
pub use trace::{TraceEvent, TraceLog, TracePhase};
