//! Physical layer of the device stack (Fig. 2, bottom).
//!
//! "The bottom-most layer is the physical layer which comprises processors,
//! device peripherals and sensors. This layer is responsible for physical
//! connectivity, transmission of raw data ... and measurement of consumption
//! through sensors." Here that means: the device's ground-truth load
//! profile, its INA219, the electrical plug state (which grid branch it is
//! connected to, if any) and the raw sampling routine.

use rtem_net::packet::MeasurementRecord;
use rtem_net::DeviceId;
use rtem_sensors::energy::{EnergyAccumulator, Milliamps, Millivolts};
use rtem_sensors::fault::SensorFault;
use rtem_sensors::grid::BranchId;
use rtem_sensors::ina219::Ina219Model;
use rtem_sensors::profile::LoadProfile;
use rtem_sim::time::SimTime;

/// Electrical connection state of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlugState {
    /// Not connected to any grid branch (in transit): draws no grid power.
    Unplugged,
    /// Connected to a branch of some network's grid.
    Plugged {
        /// Branch the device is connected to.
        branch: BranchId,
    },
}

/// One raw sample taken by the physical layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawSample {
    /// When the sample was taken (global simulation time).
    pub at: SimTime,
    /// Ground-truth current drawn at that instant.
    pub true_current: Milliamps,
    /// What the INA219 reported.
    pub measured_current: Milliamps,
}

/// The physical layer: load + sensor + plug state + accumulation.
pub struct PhysicalLayer {
    device: DeviceId,
    load: Box<dyn LoadProfile + Send>,
    sensor: Ina219Model,
    fault: Option<SensorFault>,
    accumulator: EnergyAccumulator,
    plug: PlugState,
    last_sample_at: Option<SimTime>,
    next_sequence: u64,
    samples_taken: u64,
}

impl core::fmt::Debug for PhysicalLayer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PhysicalLayer")
            .field("device", &self.device)
            .field("plug", &self.plug)
            .field("samples_taken", &self.samples_taken)
            .finish()
    }
}

impl PhysicalLayer {
    /// Creates the physical layer for `device`.
    pub fn new(
        device: DeviceId,
        load: impl LoadProfile + Send + 'static,
        sensor: Ina219Model,
        supply: Millivolts,
    ) -> Self {
        PhysicalLayer {
            device,
            load: Box::new(load),
            sensor,
            fault: None,
            accumulator: EnergyAccumulator::new(supply),
            plug: PlugState::Unplugged,
            last_sample_at: None,
            next_sequence: 0,
            samples_taken: 0,
        }
    }

    /// Installs (or clears) a sensor fault. While a fault is installed every
    /// sample is distorted by it *after* the INA219 error terms; the
    /// ground-truth grid current is unaffected, so the aggregator's own
    /// complementary measurement can expose the discrepancy.
    pub fn set_sensor_fault(&mut self, fault: Option<SensorFault>) {
        self.fault = fault;
    }

    /// The currently installed sensor fault, if any.
    pub fn sensor_fault(&self) -> Option<SensorFault> {
        self.fault
    }

    /// The owning device's id.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Current plug state.
    pub fn plug_state(&self) -> PlugState {
        self.plug
    }

    /// Returns `true` when the device is electrically connected.
    pub fn is_plugged(&self) -> bool {
        matches!(self.plug, PlugState::Plugged { .. })
    }

    /// Connects the device to a grid branch (e.g. the e-scooter starts
    /// charging at a new location).
    pub fn plug_in(&mut self, branch: BranchId) {
        self.plug = PlugState::Plugged { branch };
        // The measurement interval restarts at the new location.
        self.last_sample_at = None;
    }

    /// Disconnects the device from the grid. Consumption stops (and so does
    /// metering — the paper only bills while connected).
    pub fn unplug(&mut self) {
        self.plug = PlugState::Unplugged;
        self.last_sample_at = None;
    }

    /// Ground-truth current the device draws from the grid at `now` — zero
    /// when unplugged. This is what the grid model and the aggregator's
    /// system-level sensor see.
    pub fn true_grid_current(&mut self, now: SimTime) -> Milliamps {
        match self.plug {
            PlugState::Unplugged => Milliamps::ZERO,
            PlugState::Plugged { .. } => self.load.current_at(now),
        }
    }

    /// Takes one measurement: samples the sensor against the ground truth and
    /// accumulates charge since the previous sample.
    ///
    /// Returns the raw sample, or `None` when the device is unplugged (no
    /// consumption to meter).
    pub fn sample(&mut self, now: SimTime) -> Option<RawSample> {
        if !self.is_plugged() {
            return None;
        }
        let true_current = self.load.current_at(now);
        let mut measured = self.sensor.measure(true_current);
        if let Some(fault) = &self.fault {
            measured = fault.distort(measured, now);
        }
        if let Some(prev) = self.last_sample_at {
            let dt = now.saturating_duration_since(prev);
            self.accumulator.add_sample(measured, dt);
        }
        self.last_sample_at = Some(now);
        self.samples_taken += 1;
        Some(RawSample {
            at: now,
            true_current,
            measured_current: measured,
        })
    }

    /// Builds a [`MeasurementRecord`] covering everything accumulated since
    /// the previous record and resets the accumulator. `interval` is the
    /// device-local time window the record covers.
    pub fn build_record(
        &mut self,
        interval_start_us: u64,
        interval_end_us: u64,
        mean_current: Milliamps,
        backfilled: bool,
    ) -> MeasurementRecord {
        let charge = self.accumulator.drain();
        let record = MeasurementRecord {
            device: self.device,
            sequence: self.next_sequence,
            interval_start_us,
            interval_end_us,
            mean_current_ua: (mean_current.clamp_non_negative().value() * 1000.0).round() as u64,
            charge_uas: (charge.value().max(0.0) * 1000.0).round() as u64,
            backfilled,
        };
        self.next_sequence += 1;
        record
    }

    /// Number of raw samples taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Next sequence number that will be assigned to a record.
    pub fn next_sequence(&self) -> u64 {
        self.next_sequence
    }

    /// The sensor model (for error-bound queries).
    pub fn sensor(&self) -> &Ina219Model {
        &self.sensor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sensors::ina219::Ina219Config;
    use rtem_sensors::profile::ConstantProfile;
    use rtem_sim::rng::SimRng;

    fn layer(level_ma: f64) -> PhysicalLayer {
        PhysicalLayer::new(
            DeviceId(1),
            ConstantProfile::new(level_ma),
            Ina219Model::new(Ina219Config::ideal(), SimRng::seed_from_u64(1)),
            Millivolts::usb_bus(),
        )
    }

    #[test]
    fn unplugged_device_draws_and_measures_nothing() {
        let mut p = layer(100.0);
        assert!(!p.is_plugged());
        assert_eq!(p.true_grid_current(SimTime::ZERO), Milliamps::ZERO);
        assert!(p.sample(SimTime::ZERO).is_none());
        assert_eq!(p.samples_taken(), 0);
    }

    #[test]
    fn plugged_device_samples_truth_with_ideal_sensor() {
        let mut p = layer(150.0);
        p.plug_in(BranchId(0));
        assert!(p.is_plugged());
        let s = p.sample(SimTime::from_millis(100)).unwrap();
        assert_eq!(s.true_current.value(), 150.0);
        assert_eq!(s.measured_current.value(), 150.0);
        assert_eq!(p.samples_taken(), 1);
    }

    #[test]
    fn accumulation_starts_after_first_sample() {
        let mut p = layer(100.0);
        p.plug_in(BranchId(0));
        for i in 0..=10u64 {
            p.sample(SimTime::from_millis(i * 100));
        }
        // 10 intervals of 100 ms at 100 mA = 100 mA * 1 s = 100 mA·s.
        let record = p.build_record(0, 1_000_000, Milliamps::new(100.0), false);
        assert_eq!(record.charge_uas, 100_000);
        assert_eq!(record.sequence, 0);
        assert_eq!(p.next_sequence(), 1);
    }

    #[test]
    fn record_sequence_increments() {
        let mut p = layer(10.0);
        p.plug_in(BranchId(0));
        let r0 = p.build_record(0, 1, Milliamps::new(1.0), false);
        let r1 = p.build_record(1, 2, Milliamps::new(1.0), true);
        assert_eq!(r0.sequence, 0);
        assert_eq!(r1.sequence, 1);
        assert!(r1.backfilled);
    }

    #[test]
    fn unplug_resets_measurement_interval() {
        let mut p = layer(100.0);
        p.plug_in(BranchId(0));
        p.sample(SimTime::from_secs(1));
        p.unplug();
        assert_eq!(p.true_grid_current(SimTime::from_secs(2)), Milliamps::ZERO);
        p.plug_in(BranchId(1));
        // First sample after re-plugging must not integrate across the gap.
        p.sample(SimTime::from_secs(10));
        let record = p.build_record(0, 1, Milliamps::new(100.0), false);
        assert_eq!(record.charge_uas, 0, "gap must not be billed");
    }

    #[test]
    fn sensor_fault_distorts_samples_but_not_ground_truth() {
        use rtem_sensors::fault::{SensorFault, SensorFaultKind};
        let mut p = layer(150.0);
        p.plug_in(BranchId(0));
        p.set_sensor_fault(Some(SensorFault::new(
            SensorFaultKind::StuckAt { level_ma: 10.0 },
            SimTime::ZERO,
        )));
        assert!(p.sensor_fault().is_some());
        let s = p.sample(SimTime::from_millis(100)).unwrap();
        assert_eq!(s.true_current.value(), 150.0, "truth untouched");
        assert_eq!(s.measured_current.value(), 10.0, "reading stuck");
        assert_eq!(
            p.true_grid_current(SimTime::from_millis(100)).value(),
            150.0
        );
        // Healing restores honest readings.
        p.set_sensor_fault(None);
        let s = p.sample(SimTime::from_millis(200)).unwrap();
        assert_eq!(s.measured_current.value(), 150.0);
    }

    #[test]
    fn mean_current_is_quantized_to_microamps() {
        let mut p = layer(10.0);
        p.plug_in(BranchId(0));
        let r = p.build_record(0, 1, Milliamps::new(12.3456789), false);
        assert_eq!(r.mean_current_ua, 12_346);
    }
}
