//! Middleware layer of the device stack (Fig. 2).
//!
//! "The middleware layer is mainly composed of the operating system and the
//! firmware to control the hardware peripherals." In the simulation this is
//! the device's static configuration (identity, reporting interval, storage
//! budget), its power-state machine and the firmware-style uptime/health
//! counters an operator would query through remote management.

use rtem_net::DeviceId;
use rtem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static configuration flashed into a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Device identity (registered with the home network).
    pub device_id: DeviceId,
    /// Reporting interval Tmeasure. The paper's testbed uses 100 ms
    /// ("10 times per second").
    pub t_measure: SimDuration,
    /// Maximum number of measurement records the data layer may buffer when
    /// the network is unavailable.
    pub local_store_capacity: usize,
    /// How long the device waits for an Ack before treating a report as
    /// unacknowledged and keeping its records for retransmission.
    pub ack_timeout: SimDuration,
    /// Receiver sensitivity used during aggregator discovery, in dBm.
    pub rssi_sensitivity_dbm: f64,
    /// Human-readable firmware version string.
    pub firmware_version: String,
}

impl DeviceConfig {
    /// The configuration matching the paper's testbed devices.
    pub fn testbed(device_id: DeviceId) -> Self {
        DeviceConfig {
            device_id,
            t_measure: SimDuration::from_millis(100),
            local_store_capacity: 4096,
            ack_timeout: SimDuration::from_millis(250),
            rssi_sensitivity_dbm: -88.0,
            firmware_version: "rtem-esp32-1.0.0".to_string(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `t_measure` is zero or the store capacity is zero.
    pub fn validate(&self) {
        assert!(!self.t_measure.is_zero(), "Tmeasure must be non-zero");
        assert!(
            self.local_store_capacity > 0,
            "local store needs at least one slot"
        );
    }
}

/// Coarse power/operational state of the device firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Booting after power-on; not yet measuring.
    Booting,
    /// Operational but not connected to a grid (in transit).
    Idle,
    /// Connected and metering.
    Metering,
    /// A fault was detected (e.g. sensor failure); requires remote reset.
    Fault,
}

/// Firmware health counters surfaced through remote management.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthCounters {
    /// Number of reboots since manufacturing.
    pub reboots: u32,
    /// Number of reports sent.
    pub reports_sent: u64,
    /// Number of acks received.
    pub acks_received: u64,
    /// Number of nacks received.
    pub nacks_received: u64,
    /// Number of records that had to be buffered locally.
    pub records_buffered: u64,
    /// Number of records dropped because the local store was full.
    pub records_dropped: u64,
}

/// The middleware layer: configuration + state machine + counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Middleware {
    config: DeviceConfig,
    state: PowerState,
    booted_at: Option<SimTime>,
    counters: HealthCounters,
}

impl Middleware {
    /// Creates the middleware for a device with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: DeviceConfig) -> Self {
        config.validate();
        Middleware {
            config,
            state: PowerState::Booting,
            booted_at: None,
            counters: HealthCounters::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Reconfigures Tmeasure at runtime (remote management). Zero intervals
    /// are rejected and leave the configuration unchanged; returns whether
    /// the new interval was applied.
    pub fn set_measure_interval(&mut self, interval: SimDuration) -> bool {
        if interval.is_zero() {
            return false;
        }
        self.config.t_measure = interval;
        true
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Mutable health counters (updated by the other layers).
    pub fn counters_mut(&mut self) -> &mut HealthCounters {
        &mut self.counters
    }

    /// Health counters snapshot.
    pub fn counters(&self) -> HealthCounters {
        self.counters
    }

    /// Completes boot at `now` and enters [`PowerState::Idle`].
    pub fn boot(&mut self, now: SimTime) {
        self.booted_at = Some(now);
        self.counters.reboots += 1;
        self.state = PowerState::Idle;
    }

    /// Moves to the metering state (device plugged and registered).
    pub fn enter_metering(&mut self) {
        if self.state != PowerState::Fault {
            self.state = PowerState::Metering;
        }
    }

    /// Moves back to idle (device unplugged).
    pub fn enter_idle(&mut self) {
        if self.state != PowerState::Fault {
            self.state = PowerState::Idle;
        }
    }

    /// Latches the fault state.
    pub fn raise_fault(&mut self) {
        self.state = PowerState::Fault;
    }

    /// Clears a fault (remote-management reset) and reboots.
    pub fn reset(&mut self, now: SimTime) {
        self.state = PowerState::Booting;
        self.boot(now);
    }

    /// Uptime since the last boot, if booted.
    pub fn uptime(&self, now: SimTime) -> Option<SimDuration> {
        self.booted_at.map(|t| now.saturating_duration_since(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_config_matches_paper_parameters() {
        let cfg = DeviceConfig::testbed(DeviceId(1));
        assert_eq!(cfg.t_measure, SimDuration::from_millis(100));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "Tmeasure")]
    fn zero_t_measure_rejected() {
        let mut cfg = DeviceConfig::testbed(DeviceId(1));
        cfg.t_measure = SimDuration::ZERO;
        Middleware::new(cfg);
    }

    #[test]
    fn boot_and_state_transitions() {
        let mut mw = Middleware::new(DeviceConfig::testbed(DeviceId(1)));
        assert_eq!(mw.state(), PowerState::Booting);
        mw.boot(SimTime::from_secs(1));
        assert_eq!(mw.state(), PowerState::Idle);
        assert_eq!(mw.counters().reboots, 1);
        mw.enter_metering();
        assert_eq!(mw.state(), PowerState::Metering);
        mw.enter_idle();
        assert_eq!(mw.state(), PowerState::Idle);
    }

    #[test]
    fn fault_latches_until_reset() {
        let mut mw = Middleware::new(DeviceConfig::testbed(DeviceId(1)));
        mw.boot(SimTime::ZERO);
        mw.raise_fault();
        mw.enter_metering();
        assert_eq!(mw.state(), PowerState::Fault, "fault must latch");
        mw.reset(SimTime::from_secs(5));
        assert_eq!(mw.state(), PowerState::Idle);
        assert_eq!(mw.counters().reboots, 2);
    }

    #[test]
    fn uptime_counts_from_boot() {
        let mut mw = Middleware::new(DeviceConfig::testbed(DeviceId(1)));
        assert!(mw.uptime(SimTime::from_secs(10)).is_none());
        mw.boot(SimTime::from_secs(10));
        assert_eq!(
            mw.uptime(SimTime::from_secs(25)),
            Some(SimDuration::from_secs(15))
        );
    }

    #[test]
    fn counters_are_updatable() {
        let mut mw = Middleware::new(DeviceConfig::testbed(DeviceId(1)));
        mw.counters_mut().reports_sent += 3;
        mw.counters_mut().acks_received += 2;
        assert_eq!(mw.counters().reports_sent, 3);
        assert_eq!(mw.counters().acks_received, 2);
    }
}
