//! Data layer of the device stack (Fig. 2).
//!
//! "Data representation, security, and storage are the main features of the
//! data layer. In the absence of network connectivity with the aggregator,
//! raw consumption data is stored in the local storage until the connection
//! is established." This module is that local store: a bounded FIFO of
//! measurement records awaiting acknowledgment, plus an integrity digest so
//! locally buffered data cannot be altered unnoticed before transmission.

use rtem_chain::sha256::{Digest, Sha256};
use rtem_net::packet::MeasurementRecord;
use serde::{Deserialize, Serialize};

/// Outcome of pushing a record into the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreOutcome {
    /// The record was stored.
    Stored,
    /// The store was full; the oldest record was evicted to make room.
    StoredEvictingOldest,
}

/// Bounded store-and-forward buffer for unacknowledged measurements.
///
/// # Examples
///
/// ```
/// use rtem_device::data_layer::LocalStore;
/// use rtem_net::packet::{DeviceId, MeasurementRecord};
///
/// let mut store = LocalStore::new(8);
/// store.push(MeasurementRecord {
///     device: DeviceId(1),
///     sequence: 0,
///     interval_start_us: 0,
///     interval_end_us: 100_000,
///     mean_current_ua: 120_000,
///     charge_uas: 12_000,
///     backfilled: false,
/// });
/// assert_eq!(store.len(), 1);
/// let batch = store.drain_for_transmission(16);
/// assert_eq!(batch.len(), 1);
/// assert!(batch[0].backfilled, "retransmitted records are marked backfilled");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalStore {
    capacity: usize,
    /// Backing storage. The live records are `records[head..]`; everything
    /// before `head` is already evicted or acknowledged and awaits the next
    /// compaction. The offset turns eviction and in-order acknowledgment
    /// into pointer bumps instead of `Vec::remove(0)` memmoves — at fleet
    /// scale an unregistered device fills its whole store and then evicts
    /// on *every* measurement tick, which made the old representation
    /// quadratic in the run horizon.
    records: Vec<MeasurementRecord>,
    head: usize,
    evicted: u64,
    total_stored: u64,
}

impl PartialEq for LocalStore {
    fn eq(&self, other: &Self) -> bool {
        // Equality is over the logical contents, not the compaction state.
        self.capacity == other.capacity
            && self.evicted == other.evicted
            && self.total_stored == other.total_stored
            && self.peek_all() == other.peek_all()
    }
}

impl LocalStore {
    /// Creates a store holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "local store capacity must be non-zero");
        LocalStore {
            capacity,
            records: Vec::new(),
            head: 0,
            evicted: 0,
            total_stored: 0,
        }
    }

    /// Maximum number of records the store can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.records.len() - self.head
    }

    /// Returns `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.head == self.records.len()
    }

    /// Drops the dead prefix once it outgrows the live contents, keeping the
    /// backing vector within 2x of the live size (amortized O(1) per
    /// eviction/acknowledgment).
    fn maybe_compact(&mut self) {
        if self.head > self.capacity.max(self.records.len() - self.head) {
            self.records.drain(..self.head);
            self.head = 0;
        }
    }

    /// Number of records dropped because the store overflowed.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total number of records ever stored.
    pub fn total_stored(&self) -> u64 {
        self.total_stored
    }

    /// Buffers a record, evicting the oldest one if the store is full (the
    /// newest data is the most valuable for billing continuity).
    pub fn push(&mut self, record: MeasurementRecord) -> StoreOutcome {
        self.total_stored += 1;
        if self.len() == self.capacity {
            self.head += 1;
            self.evicted += 1;
            self.maybe_compact();
            self.records.push(record);
            StoreOutcome::StoredEvictingOldest
        } else {
            self.records.push(record);
            StoreOutcome::Stored
        }
    }

    /// Removes up to `max` records (oldest first) for transmission, marking
    /// each as backfilled. If the transmission later fails they must be
    /// re-pushed by the caller.
    pub fn drain_for_transmission(&mut self, max: usize) -> Vec<MeasurementRecord> {
        let take = max.min(self.len());
        self.records
            .drain(self.head..self.head + take)
            .map(|mut r| {
                r.backfilled = true;
                r
            })
            .collect()
    }

    /// Returns the buffered records without removing them.
    pub fn peek_all(&self) -> &[MeasurementRecord] {
        &self.records[self.head..]
    }

    /// Drops every buffered record — a firmware crash losing the volatile
    /// store-and-forward buffer. Returns how many records were lost.
    pub fn clear(&mut self) -> usize {
        let lost = self.len();
        self.records.clear();
        self.head = 0;
        lost
    }

    /// Drops every record with `sequence <= through_sequence` — called when
    /// the aggregator acknowledges receipt.
    pub fn acknowledge_through(&mut self, through_sequence: u64) -> usize {
        let before = self.len();
        // Records are pushed in ascending sequence order, so acknowledged
        // records form a prefix — pruning is an offset bump.
        while self.head < self.records.len() && self.records[self.head].sequence <= through_sequence
        {
            self.head += 1;
        }
        // Re-pushed backfill can break monotonicity; fall back to filtering
        // the (now small) live remainder only when it actually happened.
        if self
            .peek_all()
            .iter()
            .any(|r| r.sequence <= through_sequence)
        {
            let kept: Vec<MeasurementRecord> = self
                .records
                .drain(self.head..)
                .filter(|r| r.sequence > through_sequence)
                .collect();
            self.records.extend(kept);
        }
        self.maybe_compact();
        before - self.len()
    }

    /// Integrity digest over the buffered records (in order). The device
    /// keeps this in non-volatile memory so that local tampering between
    /// sampling and transmission is detectable.
    pub fn integrity_digest(&self) -> Digest {
        let mut hasher = Sha256::new();
        for r in self.peek_all() {
            hasher.update(&r.canonical_bytes());
        }
        hasher.finalize()
    }

    /// Total charge buffered, in microamp-seconds.
    pub fn buffered_charge_uas(&self) -> u64 {
        self.peek_all().iter().map(|r| r.charge_uas).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_net::packet::DeviceId;

    fn record(seq: u64) -> MeasurementRecord {
        MeasurementRecord {
            device: DeviceId(1),
            sequence: seq,
            interval_start_us: seq * 100_000,
            interval_end_us: (seq + 1) * 100_000,
            mean_current_ua: 100_000,
            charge_uas: 10_000,
            backfilled: false,
        }
    }

    #[test]
    fn push_and_len() {
        let mut s = LocalStore::new(4);
        assert!(s.is_empty());
        assert_eq!(s.push(record(0)), StoreOutcome::Stored);
        assert_eq!(s.push(record(1)), StoreOutcome::Stored);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_stored(), 2);
        assert_eq!(s.capacity(), 4);
    }

    #[test]
    fn overflow_evicts_oldest() {
        let mut s = LocalStore::new(3);
        for i in 0..3 {
            s.push(record(i));
        }
        assert_eq!(s.push(record(3)), StoreOutcome::StoredEvictingOldest);
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 1);
        let seqs: Vec<u64> = s.peek_all().iter().map(|r| r.sequence).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn drain_marks_backfilled_and_preserves_order() {
        let mut s = LocalStore::new(10);
        for i in 0..5 {
            s.push(record(i));
        }
        let batch = s.drain_for_transmission(3);
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|r| r.backfilled));
        assert_eq!(batch[0].sequence, 0);
        assert_eq!(batch[2].sequence, 2);
        assert_eq!(s.len(), 2);
        // Draining more than available just drains what is there.
        let rest = s.drain_for_transmission(100);
        assert_eq!(rest.len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn acknowledge_removes_covered_records() {
        let mut s = LocalStore::new(10);
        for i in 0..6 {
            s.push(record(i));
        }
        assert_eq!(s.acknowledge_through(3), 4);
        let seqs: Vec<u64> = s.peek_all().iter().map(|r| r.sequence).collect();
        assert_eq!(seqs, vec![4, 5]);
        assert_eq!(s.acknowledge_through(100), 2);
        assert!(s.is_empty());
        assert_eq!(s.acknowledge_through(100), 0);
    }

    #[test]
    fn clear_loses_everything_buffered() {
        let mut s = LocalStore::new(10);
        for i in 0..4 {
            s.push(record(i));
        }
        assert_eq!(s.clear(), 4);
        assert!(s.is_empty());
        assert_eq!(s.clear(), 0);
        // Lifetime counters survive the crash.
        assert_eq!(s.total_stored(), 4);
    }

    #[test]
    fn integrity_digest_changes_with_content() {
        let mut a = LocalStore::new(10);
        let mut b = LocalStore::new(10);
        a.push(record(0));
        b.push(record(0));
        assert_eq!(a.integrity_digest(), b.integrity_digest());
        b.push(record(1));
        assert_ne!(a.integrity_digest(), b.integrity_digest());
    }

    #[test]
    fn buffered_charge_sums_records() {
        let mut s = LocalStore::new(10);
        for i in 0..4 {
            s.push(record(i));
        }
        assert_eq!(s.buffered_charge_uas(), 40_000);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = LocalStore::new(0);
    }
}
