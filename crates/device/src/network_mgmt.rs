//! Network-management component of the device's network layer (Fig. 2).
//!
//! This is the device-side implementation of the registration and mobility
//! protocol of Fig. 3: aggregator discovery (RSSI scan), association and
//! broker connection, membership registration (master or temporary),
//! re-registration after a Nack, and the Thandshake bookkeeping the
//! evaluation reports.
//!
//! The component is a pure state machine: callers feed it time (`poll`) and
//! received packets (`handle_packet`), and it returns commands (packets to
//! publish) and events (state changes the device application cares about).

use rtem_net::packet::{AggregatorAddr, MembershipKind, Packet, RejectReason};
use rtem_net::rssi::{Position, RadioEnvironment};
use rtem_net::DeviceId;
use rtem_sim::rng::SimRng;
use rtem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Durations of the handshake phases a mobile device goes through after
/// plugging in at a new grid-location, before it can report consumption.
///
/// The defaults are calibrated so that the end-to-end temporary-membership
/// handshake lands in the 5.5–6.5 s band the paper measures (mean ≈ 6 s over
/// 15 runs): a full 2.4 GHz Wi-Fi channel scan, association + DHCP, MQTT
/// broker connection, then the registration exchange itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HandshakeTiming {
    /// Mean duration of the Wi-Fi scan phase.
    pub scan: SimDuration,
    /// Half-width of the uniform jitter applied to the scan phase.
    pub scan_jitter: SimDuration,
    /// Mean duration of association + DHCP.
    pub association: SimDuration,
    /// Half-width of the association jitter.
    pub association_jitter: SimDuration,
    /// Mean duration of the MQTT broker connection.
    pub broker_connect: SimDuration,
    /// Half-width of the broker-connection jitter.
    pub broker_connect_jitter: SimDuration,
    /// How long to wait for a registration response before retransmitting.
    pub registration_timeout: SimDuration,
    /// Maximum registration retransmissions before restarting the scan.
    pub max_registration_attempts: u32,
}

impl HandshakeTiming {
    /// Timing calibrated against the paper's testbed (Thandshake ≈ 6 s).
    pub fn testbed() -> Self {
        HandshakeTiming {
            scan: SimDuration::from_millis(3200),
            scan_jitter: SimDuration::from_millis(300),
            association: SimDuration::from_millis(1700),
            association_jitter: SimDuration::from_millis(150),
            broker_connect: SimDuration::from_millis(950),
            broker_connect_jitter: SimDuration::from_millis(80),
            registration_timeout: SimDuration::from_millis(500),
            max_registration_attempts: 4,
        }
    }

    /// A fast profile for unit tests (all phases a few milliseconds).
    pub fn fast() -> Self {
        HandshakeTiming {
            scan: SimDuration::from_millis(3),
            scan_jitter: SimDuration::ZERO,
            association: SimDuration::from_millis(2),
            association_jitter: SimDuration::ZERO,
            broker_connect: SimDuration::from_millis(1),
            broker_connect_jitter: SimDuration::ZERO,
            registration_timeout: SimDuration::from_millis(50),
            max_registration_attempts: 3,
        }
    }

    fn jittered(&self, mean: SimDuration, jitter: SimDuration, rng: &mut SimRng) -> SimDuration {
        if jitter.is_zero() {
            return mean;
        }
        let j = rng.uniform(-(jitter.as_micros() as f64), jitter.as_micros() as f64);
        let total = mean.as_micros() as f64 + j;
        SimDuration::from_micros(total.max(0.0) as u64)
    }
}

/// Per-phase breakdown of one completed handshake, used for the Thandshake
/// statistics of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HandshakeBreakdown {
    /// Time spent scanning for aggregators.
    pub scan: SimDuration,
    /// Time spent associating with the network.
    pub association: SimDuration,
    /// Time spent connecting to the MQTT broker.
    pub broker_connect: SimDuration,
    /// Time spent in the registration exchange (including verification).
    pub registration: SimDuration,
    /// Kind of membership that was established.
    pub membership: MembershipKind,
}

impl HandshakeBreakdown {
    /// Total handshake duration (the paper's Thandshake).
    pub fn total(&self) -> SimDuration {
        self.scan + self.association + self.broker_connect + self.registration
    }
}

/// State of the network-management state machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetState {
    /// Radio idle (device unplugged or just booted).
    Down,
    /// Scanning for aggregators.
    Scanning {
        /// When the scan completes.
        until: SimTime,
    },
    /// Associating with the chosen aggregator's network.
    Associating {
        /// Aggregator selected by the scan.
        aggregator: AggregatorAddr,
        /// When association completes.
        until: SimTime,
    },
    /// Connecting to the MQTT broker.
    ConnectingBroker {
        /// Aggregator being connected to.
        aggregator: AggregatorAddr,
        /// When the connection completes.
        until: SimTime,
    },
    /// Registration request sent, waiting for a response.
    Registering {
        /// Aggregator the request was sent to.
        aggregator: AggregatorAddr,
        /// When the current attempt times out.
        timeout_at: SimTime,
        /// Attempts made so far.
        attempts: u32,
    },
    /// Registered and allowed to report.
    Registered {
        /// Serving aggregator.
        aggregator: AggregatorAddr,
        /// Membership kind granted.
        membership: MembershipKind,
        /// TDMA slot assigned for reporting.
        slot: u16,
    },
}

/// A command the device must execute on behalf of the network manager.
#[derive(Debug, Clone, PartialEq)]
pub enum NetCommand {
    /// Publish a packet addressed to an aggregator.
    Send {
        /// Destination aggregator.
        to: AggregatorAddr,
        /// Packet to publish.
        packet: Packet,
    },
}

/// An event the network manager reports to the rest of the device.
#[derive(Debug, Clone, PartialEq)]
pub enum NetEvent {
    /// Registration succeeded.
    Registered {
        /// Serving aggregator.
        aggregator: AggregatorAddr,
        /// Membership kind granted.
        membership: MembershipKind,
        /// Assigned reporting slot.
        slot: u16,
        /// Per-phase handshake timing.
        breakdown: HandshakeBreakdown,
    },
    /// Registration was rejected by the aggregator.
    RegistrationRejected {
        /// Aggregator that rejected the device.
        aggregator: AggregatorAddr,
        /// Reason carried in the reject packet.
        reason: RejectReason,
    },
    /// The serving aggregator acknowledged records up to a sequence number.
    AckReceived {
        /// Highest acknowledged device sequence number.
        through_sequence: u64,
    },
    /// The aggregator refused a report because the device is not a member —
    /// the manager has already started re-registration.
    NackReceived,
    /// No aggregator was heard during the scan; the scan will be retried.
    ScanFoundNothing,
}

/// The device-side network manager.
pub struct NetworkManager {
    device: DeviceId,
    timing: HandshakeTiming,
    rssi_sensitivity_dbm: f64,
    state: NetState,
    master: Option<AggregatorAddr>,
    rng: SimRng,
    handshake_started_at: Option<SimTime>,
    phase_started_at: SimTime,
    scan_elapsed: SimDuration,
    association_elapsed: SimDuration,
    broker_elapsed: SimDuration,
    registration_started_at: Option<SimTime>,
    handshakes_completed: u64,
}

impl core::fmt::Debug for NetworkManager {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NetworkManager")
            .field("device", &self.device)
            .field("state", &self.state)
            .field("master", &self.master)
            .finish()
    }
}

impl NetworkManager {
    /// Creates the manager for `device` with the given handshake timing.
    pub fn new(
        device: DeviceId,
        timing: HandshakeTiming,
        rssi_sensitivity_dbm: f64,
        rng: SimRng,
    ) -> Self {
        NetworkManager {
            device,
            timing,
            rssi_sensitivity_dbm,
            state: NetState::Down,
            master: None,
            rng,
            handshake_started_at: None,
            phase_started_at: SimTime::ZERO,
            scan_elapsed: SimDuration::ZERO,
            association_elapsed: SimDuration::ZERO,
            broker_elapsed: SimDuration::ZERO,
            registration_started_at: None,
            handshakes_completed: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> NetState {
        self.state
    }

    /// The device's home (master) aggregator, once known.
    pub fn master(&self) -> Option<AggregatorAddr> {
        self.master
    }

    /// Pre-provisions the master address (e.g. restored from flash after a
    /// reboot in the home network).
    pub fn set_master(&mut self, master: Option<AggregatorAddr>) {
        self.master = master;
    }

    /// Returns the serving aggregator and assigned slot when registered.
    pub fn registration(&self) -> Option<(AggregatorAddr, MembershipKind, u16)> {
        match self.state {
            NetState::Registered {
                aggregator,
                membership,
                slot,
            } => Some((aggregator, membership, slot)),
            _ => None,
        }
    }

    /// Returns `true` when the device may transmit consumption reports.
    pub fn is_registered(&self) -> bool {
        matches!(self.state, NetState::Registered { .. })
    }

    /// Number of completed handshakes (master + temporary).
    pub fn handshakes_completed(&self) -> u64 {
        self.handshakes_completed
    }

    /// Brings the radio up and starts aggregator discovery at `now`
    /// (the device has just been plugged in at some grid-location).
    pub fn start_discovery(&mut self, now: SimTime) {
        let scan_len =
            self.timing
                .jittered(self.timing.scan, self.timing.scan_jitter, &mut self.rng);
        self.handshake_started_at = Some(now);
        self.phase_started_at = now;
        self.scan_elapsed = SimDuration::ZERO;
        self.association_elapsed = SimDuration::ZERO;
        self.broker_elapsed = SimDuration::ZERO;
        self.registration_started_at = None;
        self.state = NetState::Scanning {
            until: now + scan_len,
        };
    }

    /// Shuts the radio down (device unplugged). Master membership is kept —
    /// the home network retains it until explicitly removed (Fig. 3, seq. 3).
    pub fn shutdown(&mut self) {
        self.state = NetState::Down;
        self.handshake_started_at = None;
    }

    /// Advances timed phases. Must be called whenever simulated time moves
    /// (the device calls it on every measurement tick).
    pub fn poll(
        &mut self,
        now: SimTime,
        radio: &RadioEnvironment,
        position: Position,
    ) -> (Vec<NetCommand>, Vec<NetEvent>) {
        let mut commands = Vec::new();
        let mut events = Vec::new();
        match self.state {
            NetState::Down | NetState::Registered { .. } => {}
            NetState::Scanning { until } => {
                if now >= until {
                    self.scan_elapsed += now.saturating_duration_since(self.phase_started_at);
                    match radio.best_aggregator(position, self.rssi_sensitivity_dbm, &mut self.rng)
                    {
                        Some(found) => {
                            let assoc = self.timing.jittered(
                                self.timing.association,
                                self.timing.association_jitter,
                                &mut self.rng,
                            );
                            self.phase_started_at = now;
                            self.state = NetState::Associating {
                                aggregator: found.aggregator,
                                until: now + assoc,
                            };
                        }
                        None => {
                            events.push(NetEvent::ScanFoundNothing);
                            // Retry the scan.
                            let scan_len = self.timing.jittered(
                                self.timing.scan,
                                self.timing.scan_jitter,
                                &mut self.rng,
                            );
                            self.phase_started_at = now;
                            self.state = NetState::Scanning {
                                until: now + scan_len,
                            };
                        }
                    }
                }
            }
            NetState::Associating { aggregator, until } => {
                if now >= until {
                    self.association_elapsed +=
                        now.saturating_duration_since(self.phase_started_at);
                    let connect = self.timing.jittered(
                        self.timing.broker_connect,
                        self.timing.broker_connect_jitter,
                        &mut self.rng,
                    );
                    self.phase_started_at = now;
                    self.state = NetState::ConnectingBroker {
                        aggregator,
                        until: now + connect,
                    };
                }
            }
            NetState::ConnectingBroker { aggregator, until } => {
                if now >= until {
                    self.broker_elapsed += now.saturating_duration_since(self.phase_started_at);
                    self.registration_started_at = Some(now);
                    commands.push(self.send_registration(aggregator, now));
                }
            }
            NetState::Registering {
                aggregator,
                timeout_at,
                attempts,
            } => {
                if now >= timeout_at {
                    if attempts >= self.timing.max_registration_attempts {
                        // Give up on this aggregator and rescan.
                        self.start_discovery(now);
                    } else {
                        commands.push(NetCommand::Send {
                            to: aggregator,
                            packet: Packet::RegistrationRequest {
                                device: self.device,
                                master: self.master,
                            },
                        });
                        self.state = NetState::Registering {
                            aggregator,
                            timeout_at: now + self.timing.registration_timeout,
                            attempts: attempts + 1,
                        };
                    }
                }
            }
        }
        (commands, events)
    }

    fn send_registration(&mut self, aggregator: AggregatorAddr, now: SimTime) -> NetCommand {
        self.state = NetState::Registering {
            aggregator,
            timeout_at: now + self.timing.registration_timeout,
            attempts: 1,
        };
        NetCommand::Send {
            to: aggregator,
            packet: Packet::RegistrationRequest {
                device: self.device,
                master: self.master,
            },
        }
    }

    /// Handles a packet addressed to this device.
    pub fn handle_packet(
        &mut self,
        packet: &Packet,
        now: SimTime,
    ) -> (Vec<NetCommand>, Vec<NetEvent>) {
        let mut commands = Vec::new();
        let mut events = Vec::new();
        match packet {
            Packet::RegistrationAccept {
                device,
                address,
                membership,
                slot,
            } if *device == self.device => {
                let registration_time = self
                    .registration_started_at
                    .map(|t| now.saturating_duration_since(t))
                    .unwrap_or(SimDuration::ZERO);
                if *membership == MembershipKind::Master {
                    self.master = Some(*address);
                }
                self.state = NetState::Registered {
                    aggregator: *address,
                    membership: *membership,
                    slot: *slot,
                };
                self.handshakes_completed += 1;
                let breakdown = HandshakeBreakdown {
                    scan: self.scan_elapsed,
                    association: self.association_elapsed,
                    broker_connect: self.broker_elapsed,
                    registration: registration_time,
                    membership: *membership,
                };
                events.push(NetEvent::Registered {
                    aggregator: *address,
                    membership: *membership,
                    slot: *slot,
                    breakdown,
                });
            }
            Packet::RegistrationReject { device, reason } if *device == self.device => {
                if let NetState::Registering { aggregator, .. } = self.state {
                    events.push(NetEvent::RegistrationRejected {
                        aggregator,
                        reason: *reason,
                    });
                }
                // Back off and rescan; a different aggregator may be in range.
                self.start_discovery(now);
            }
            Packet::Ack {
                device,
                through_sequence,
            } if *device == self.device => {
                events.push(NetEvent::AckReceived {
                    through_sequence: *through_sequence,
                });
            }
            Packet::Nack { device } if *device == self.device => {
                events.push(NetEvent::NackReceived);
                // Re-initiate membership including the master address
                // (temporary-membership request, Fig. 3 sequence 2).
                if let NetState::Registered { aggregator, .. } = self.state {
                    self.registration_started_at = Some(now);
                    // Nack implies we are already associated and connected to
                    // the broker of the new network; only registration redoes.
                    if self.handshake_started_at.is_none() {
                        self.handshake_started_at = Some(now);
                    }
                    commands.push(self.send_registration(aggregator, now));
                } else if let NetState::Registering { .. } = self.state {
                    // Already re-registering; nothing extra to do.
                } else {
                    self.start_discovery(now);
                }
            }
            _ => {}
        }
        (commands, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_net::rssi::PathLossModel;

    fn radio_with_one_aggregator() -> RadioEnvironment {
        let mut env = RadioEnvironment::new(PathLossModel::deterministic());
        env.place_aggregator(AggregatorAddr(1), Position::new(0.0, 0.0));
        env
    }

    fn manager() -> NetworkManager {
        NetworkManager::new(
            DeviceId(7),
            HandshakeTiming::fast(),
            -90.0,
            SimRng::seed_from_u64(5),
        )
    }

    /// Drives the manager through time until it emits a registration request.
    fn drive_until_registration_request(
        nm: &mut NetworkManager,
        radio: &RadioEnvironment,
        start: SimTime,
    ) -> (SimTime, AggregatorAddr) {
        let mut now = start;
        for _ in 0..100 {
            now += SimDuration::from_millis(1);
            let (commands, _) = nm.poll(now, radio, Position::new(1.0, 0.0));
            if let Some(NetCommand::Send { to, packet }) = commands.first() {
                if matches!(packet, Packet::RegistrationRequest { .. }) {
                    return (now, *to);
                }
            }
        }
        panic!("registration request never emitted");
    }

    #[test]
    fn full_master_registration_flow() {
        let radio = radio_with_one_aggregator();
        let mut nm = manager();
        assert_eq!(nm.state(), NetState::Down);
        nm.start_discovery(SimTime::ZERO);
        assert!(matches!(nm.state(), NetState::Scanning { .. }));

        let (now, to) = drive_until_registration_request(&mut nm, &radio, SimTime::ZERO);
        assert_eq!(to, AggregatorAddr(1));
        assert!(matches!(nm.state(), NetState::Registering { .. }));

        let accept = Packet::RegistrationAccept {
            device: DeviceId(7),
            address: AggregatorAddr(1),
            membership: MembershipKind::Master,
            slot: 2,
        };
        let (_, events) = nm.handle_packet(&accept, now + SimDuration::from_millis(5));
        assert!(nm.is_registered());
        assert_eq!(nm.master(), Some(AggregatorAddr(1)));
        assert_eq!(nm.handshakes_completed(), 1);
        match &events[0] {
            NetEvent::Registered {
                membership,
                slot,
                breakdown,
                ..
            } => {
                assert_eq!(*membership, MembershipKind::Master);
                assert_eq!(*slot, 2);
                assert!(breakdown.total() > SimDuration::ZERO);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn temporary_registration_includes_master_address() {
        let radio = radio_with_one_aggregator();
        let mut nm = manager();
        nm.set_master(Some(AggregatorAddr(9)));
        nm.start_discovery(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut seen_master = None;
        for _ in 0..100 {
            now += SimDuration::from_millis(1);
            let (commands, _) = nm.poll(now, &radio, Position::new(1.0, 0.0));
            if let Some(NetCommand::Send {
                packet: Packet::RegistrationRequest { master, .. },
                ..
            }) = commands.first()
            {
                seen_master = *master;
                break;
            }
        }
        assert_eq!(seen_master, Some(AggregatorAddr(9)));
    }

    #[test]
    fn nack_triggers_reregistration_with_master() {
        let mut nm = manager();
        nm.set_master(Some(AggregatorAddr(1)));
        // Pretend the device is already registered (e.g. stale state after
        // moving to a new network whose aggregator does not know it).
        nm.state = NetState::Registered {
            aggregator: AggregatorAddr(2),
            membership: MembershipKind::Master,
            slot: 0,
        };
        let nack = Packet::Nack {
            device: DeviceId(7),
        };
        let (commands, events) = nm.handle_packet(&nack, SimTime::from_secs(10));
        assert!(events.contains(&NetEvent::NackReceived));
        match &commands[0] {
            NetCommand::Send {
                to,
                packet: Packet::RegistrationRequest { master, .. },
            } => {
                assert_eq!(*to, AggregatorAddr(2));
                assert_eq!(*master, Some(AggregatorAddr(1)));
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(matches!(nm.state(), NetState::Registering { .. }));
    }

    #[test]
    fn rejection_restarts_discovery() {
        let radio = radio_with_one_aggregator();
        let mut nm = manager();
        nm.start_discovery(SimTime::ZERO);
        let (now, _) = drive_until_registration_request(&mut nm, &radio, SimTime::ZERO);
        let reject = Packet::RegistrationReject {
            device: DeviceId(7),
            reason: RejectReason::NoFreeSlots,
        };
        let (_, events) = nm.handle_packet(&reject, now);
        assert!(matches!(
            events[0],
            NetEvent::RegistrationRejected {
                reason: RejectReason::NoFreeSlots,
                ..
            }
        ));
        assert!(matches!(nm.state(), NetState::Scanning { .. }));
    }

    #[test]
    fn registration_times_out_and_retries() {
        let radio = radio_with_one_aggregator();
        let mut nm = manager();
        nm.start_discovery(SimTime::ZERO);
        let (now, _) = drive_until_registration_request(&mut nm, &radio, SimTime::ZERO);
        // Never answer; after the timeout the manager retransmits.
        let retry_time = now + SimDuration::from_millis(60);
        let (commands, _) = nm.poll(retry_time, &radio, Position::new(1.0, 0.0));
        assert_eq!(commands.len(), 1);
        if let NetState::Registering { attempts, .. } = nm.state() {
            assert_eq!(attempts, 2);
        } else {
            panic!("should still be registering");
        }
    }

    #[test]
    fn exhausted_retries_fall_back_to_scanning() {
        let radio = radio_with_one_aggregator();
        let mut nm = manager();
        nm.start_discovery(SimTime::ZERO);
        let (mut now, _) = drive_until_registration_request(&mut nm, &radio, SimTime::ZERO);
        for _ in 0..10 {
            now += SimDuration::from_millis(60);
            nm.poll(now, &radio, Position::new(1.0, 0.0));
            if matches!(nm.state(), NetState::Scanning { .. }) {
                return;
            }
        }
        panic!("manager never gave up and rescanned");
    }

    #[test]
    fn empty_scan_reports_and_retries() {
        let empty_radio = RadioEnvironment::new(PathLossModel::deterministic());
        let mut nm = manager();
        nm.start_discovery(SimTime::ZERO);
        let (_, events) = nm.poll(
            SimTime::from_millis(10),
            &empty_radio,
            Position::new(0.0, 0.0),
        );
        assert!(events.contains(&NetEvent::ScanFoundNothing));
        assert!(matches!(nm.state(), NetState::Scanning { .. }));
    }

    #[test]
    fn ack_event_is_forwarded() {
        let mut nm = manager();
        let ack = Packet::Ack {
            device: DeviceId(7),
            through_sequence: 31,
        };
        let (_, events) = nm.handle_packet(&ack, SimTime::ZERO);
        assert_eq!(
            events,
            vec![NetEvent::AckReceived {
                through_sequence: 31
            }]
        );
    }

    #[test]
    fn packets_for_other_devices_are_ignored() {
        let mut nm = manager();
        let foreign_ack = Packet::Ack {
            device: DeviceId(99),
            through_sequence: 1,
        };
        let (commands, events) = nm.handle_packet(&foreign_ack, SimTime::ZERO);
        assert!(commands.is_empty());
        assert!(events.is_empty());
    }

    #[test]
    fn shutdown_keeps_master_membership() {
        let mut nm = manager();
        nm.set_master(Some(AggregatorAddr(1)));
        nm.state = NetState::Registered {
            aggregator: AggregatorAddr(1),
            membership: MembershipKind::Master,
            slot: 1,
        };
        nm.shutdown();
        assert_eq!(nm.state(), NetState::Down);
        assert_eq!(nm.master(), Some(AggregatorAddr(1)));
    }

    #[test]
    fn testbed_handshake_duration_is_about_six_seconds() {
        // Monte-carlo over the timing model alone (scan + association +
        // broker connect), which dominates Thandshake.
        let timing = HandshakeTiming::testbed();
        let mut rng = SimRng::seed_from_u64(77);
        for _ in 0..100 {
            let total = timing.jittered(timing.scan, timing.scan_jitter, &mut rng)
                + timing.jittered(timing.association, timing.association_jitter, &mut rng)
                + timing.jittered(
                    timing.broker_connect,
                    timing.broker_connect_jitter,
                    &mut rng,
                );
            let secs = total.as_secs_f64();
            assert!(
                (5.2..6.6).contains(&secs),
                "handshake phase total {secs} s outside expected band"
            );
        }
    }
}
