//! The composed metering device.
//!
//! [`MeteringDevice`] wires the layers of Fig. 2 together: the physical layer
//! samples the load through the INA219, the data layer buffers
//! unacknowledged records, the network layer runs the registration/mobility
//! state machine of Fig. 3, and the application layer keeps a billing
//! estimate and a demand forecast. The simulation (or an example binary)
//! drives the device with two calls: [`MeteringDevice::on_measure_tick`] at
//! every Tmeasure and [`MeteringDevice::on_packet`] for every packet
//! delivered to it.

use crate::application::{
    BillingEstimator, DemandForecaster, ManagementCommand, ManagementResponse, Tariff,
};
use crate::data_layer::LocalStore;
use crate::middleware::{DeviceConfig, Middleware, PowerState};
use crate::network_mgmt::{
    HandshakeBreakdown, HandshakeTiming, NetCommand, NetEvent, NetworkManager,
};
use crate::physical::PhysicalLayer;
use rtem_net::packet::{AggregatorAddr, MeasurementRecord, MembershipKind, Packet};
use rtem_net::rssi::{Position, RadioEnvironment};
use rtem_net::DeviceId;
use rtem_sensors::energy::{MilliampSeconds, Milliamps, Millivolts};
use rtem_sensors::fault::SensorFault;
use rtem_sensors::grid::BranchId;
use rtem_sensors::ina219::{Ina219Config, Ina219Model};
use rtem_sensors::profile::LoadProfile;
use rtem_sim::rng::SimRng;
use rtem_sim::rtc::{RtcConfig, RtcModel};
use rtem_sim::time::SimTime;

/// A packet the device wants delivered to an aggregator.
#[derive(Debug, Clone, PartialEq)]
pub struct Outbound {
    /// Destination aggregator.
    pub to: AggregatorAddr,
    /// The packet to publish.
    pub packet: Packet,
}

/// The full device stack.
pub struct MeteringDevice {
    middleware: Middleware,
    physical: PhysicalLayer,
    network: NetworkManager,
    store: LocalStore,
    billing: BillingEstimator,
    forecaster: DemandForecaster,
    rtc: RtcModel,
    position: Position,
    last_tick: Option<SimTime>,
    last_handshake: Option<HandshakeBreakdown>,
    reported_series: Vec<(SimTime, Milliamps)>,
    crashed: bool,
    records_lost_to_crashes: u64,
    reporting_enabled: bool,
    persist_store: bool,
}

impl core::fmt::Debug for MeteringDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MeteringDevice")
            .field("id", &self.id())
            .field("state", &self.middleware.state())
            .field("registered", &self.network.is_registered())
            .field("buffered", &self.store.len())
            .finish()
    }
}

impl MeteringDevice {
    /// Builds a device from its configuration and hardware models.
    pub fn new(
        config: DeviceConfig,
        load: impl LoadProfile + Send + 'static,
        sensor_config: Ina219Config,
        handshake: HandshakeTiming,
        tariff: Tariff,
        rng: SimRng,
    ) -> Self {
        let device_id = config.device_id;
        let supply = Millivolts::usb_bus();
        let sensitivity = config.rssi_sensitivity_dbm;
        let store_capacity = config.local_store_capacity;
        let middleware = Middleware::new(config);
        MeteringDevice {
            middleware,
            physical: PhysicalLayer::new(
                device_id,
                load,
                Ina219Model::new(sensor_config, rng.derive(1)),
                supply,
            ),
            network: NetworkManager::new(device_id, handshake, sensitivity, rng.derive(2)),
            store: LocalStore::new(store_capacity),
            billing: BillingEstimator::new(tariff, supply),
            forecaster: DemandForecaster::new(0.2),
            rtc: RtcModel::new(RtcConfig::default()),
            position: Position::default(),
            last_tick: None,
            last_handshake: None,
            reported_series: Vec::new(),
            crashed: false,
            records_lost_to_crashes: 0,
            reporting_enabled: true,
            persist_store: false,
        }
    }

    /// A device configured like the paper's testbed nodes.
    pub fn testbed(
        device_id: DeviceId,
        load: impl LoadProfile + Send + 'static,
        rng: SimRng,
    ) -> Self {
        MeteringDevice::new(
            DeviceConfig::testbed(device_id),
            load,
            Ina219Config::testbed(),
            HandshakeTiming::testbed(),
            Tariff::default(),
            rng,
        )
    }

    /// The device's identity.
    pub fn id(&self) -> DeviceId {
        self.physical.device()
    }

    /// Completes boot at `now`.
    pub fn boot(&mut self, now: SimTime) {
        self.middleware.boot(now);
        self.rtc.synchronize(now);
    }

    /// Current firmware power state.
    pub fn power_state(&self) -> PowerState {
        self.middleware.state()
    }

    /// Returns `true` when the device holds an active registration.
    pub fn is_registered(&self) -> bool {
        self.network.is_registered()
    }

    /// The home (master) aggregator, once known.
    pub fn master(&self) -> Option<AggregatorAddr> {
        self.network.master()
    }

    /// The serving aggregator, membership kind and slot while registered.
    pub fn registration(&self) -> Option<(AggregatorAddr, MembershipKind, u16)> {
        self.network.registration()
    }

    /// Number of records buffered in local storage awaiting acknowledgment.
    pub fn buffered_records(&self) -> usize {
        self.store.len()
    }

    /// Per-phase timing of the most recently completed handshake.
    pub fn last_handshake(&self) -> Option<HandshakeBreakdown> {
        self.last_handshake
    }

    /// The device-local billing estimate.
    pub fn billing(&self) -> &BillingEstimator {
        &self.billing
    }

    /// The demand forecaster.
    pub fn forecaster(&self) -> &DemandForecaster {
        &self.forecaster
    }

    /// Health counters maintained by the middleware.
    pub fn counters(&self) -> crate::middleware::HealthCounters {
        self.middleware.counters()
    }

    /// Every `(time, measured current)` pair the device has reported or
    /// buffered, for plotting Fig. 6-style traces.
    pub fn measured_series(&self) -> &[(SimTime, Milliamps)] {
        &self.reported_series
    }

    /// Ground-truth current the device pulls from the grid at `now` (zero
    /// when unplugged). Exposed so the grid model and the aggregator-side
    /// meter observe the same load the device does.
    pub fn true_grid_current(&mut self, now: SimTime) -> Milliamps {
        self.physical.true_grid_current(now)
    }

    /// Returns `true` when the device is electrically connected.
    pub fn is_plugged(&self) -> bool {
        self.physical.is_plugged()
    }

    /// Connects the device to a grid branch at `position` and starts
    /// aggregator discovery (sequence 1 / 2 of Fig. 3).
    pub fn plug_in(&mut self, now: SimTime, branch: BranchId, position: Position) {
        self.physical.plug_in(branch);
        self.position = position;
        self.last_tick = None;
        self.network.start_discovery(now);
    }

    /// Disconnects the device from the grid (start of transit). Master
    /// membership is retained by the home network.
    pub fn unplug(&mut self, _now: SimTime) {
        self.physical.unplug();
        self.network.shutdown();
        self.middleware.enter_idle();
        self.last_tick = None;
    }

    /// Installs a sensor fault on the device's INA219: subsequent samples
    /// are distorted while the ground-truth load is unaffected. Used by the
    /// fault-injection subsystem.
    pub fn inject_sensor_fault(&mut self, fault: SensorFault) {
        self.physical.set_sensor_fault(Some(fault));
    }

    /// Heals an injected sensor fault.
    pub fn clear_sensor_fault(&mut self) {
        self.physical.set_sensor_fault(None);
    }

    /// The currently injected sensor fault, if any.
    pub fn sensor_fault(&self) -> Option<SensorFault> {
        self.physical.sensor_fault()
    }

    /// `true` while the firmware is crashed (between
    /// [`crash`](Self::crash) and [`restart`](Self::restart)).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Reconfigures Tmeasure at runtime (fleet command). Zero intervals are
    /// rejected; returns whether the new interval was applied.
    pub fn set_measure_interval(&mut self, interval: rtem_sim::time::SimDuration) -> bool {
        self.middleware.set_measure_interval(interval)
    }

    /// The currently configured Tmeasure.
    pub fn measure_interval(&self) -> rtem_sim::time::SimDuration {
        self.middleware.config().t_measure
    }

    /// Enables or disables consumption reporting (fleet command). A muted
    /// device keeps measuring and buffering — records drain in one backfilled
    /// burst when reporting resumes.
    pub fn set_reporting(&mut self, enabled: bool) {
        self.reporting_enabled = enabled;
    }

    /// `true` while the device publishes consumption reports.
    pub fn reporting_enabled(&self) -> bool {
        self.reporting_enabled
    }

    /// Replaces the billing tariff going forward (fleet command).
    pub fn set_tariff(&mut self, tariff: Tariff) {
        self.billing.set_tariff(tariff);
    }

    /// Configures whether the store-and-forward buffer survives firmware
    /// crashes (fleet command), modeling a firmware that journals records to
    /// flash instead of RAM.
    pub fn set_persist_store(&mut self, persist: bool) {
        self.persist_store = persist;
    }

    /// `true` when buffered records survive a crash.
    pub fn persists_store(&self) -> bool {
        self.persist_store
    }

    /// Records lost across all firmware crashes so far.
    pub fn records_lost_to_crashes(&self) -> u64 {
        self.records_lost_to_crashes
    }

    /// Simulates a firmware crash: every unacknowledged buffered record is
    /// lost (the store-and-forward buffer is volatile), the registration
    /// state machine dies and the firmware latches
    /// [`PowerState::Fault`]. The electrical load keeps drawing — a crashed
    /// charger still charges — which is exactly the reported-vs-measured gap
    /// the aggregator's complementary measurement exposes. Returns the
    /// number of records lost.
    pub fn crash(&mut self, _now: SimTime) -> usize {
        // A journaling firmware (CrashRecoveryConfig { persist_store: true })
        // keeps its buffered records across the reboot.
        let lost = if self.persist_store {
            0
        } else {
            self.store.clear()
        };
        self.records_lost_to_crashes += lost as u64;
        self.crashed = true;
        self.network.shutdown();
        self.middleware.raise_fault();
        self.last_tick = None;
        lost
    }

    /// Reboots a crashed firmware at `now`: the fault state clears, the RTC
    /// re-synchronizes, and — when still electrically connected — aggregator
    /// discovery restarts so the device re-registers and resumes reporting.
    pub fn restart(&mut self, now: SimTime) {
        self.crashed = false;
        self.middleware.reset(now);
        self.rtc.synchronize(now);
        self.last_tick = None;
        if self.physical.is_plugged() {
            self.network.start_discovery(now);
        }
    }

    /// One Tmeasure tick: advance the network state machine, take a
    /// measurement when plugged, and emit any packets that must be published.
    pub fn on_measure_tick(&mut self, now: SimTime, radio: &RadioEnvironment) -> Vec<Outbound> {
        let mut out = Vec::new();
        self.on_measure_tick_into(now, radio, &mut out);
        out
    }

    /// Like [`on_measure_tick`](Self::on_measure_tick), but appends the
    /// outbound packets to a caller-provided buffer. The simulation's event
    /// loop reuses one buffer across the whole fleet so ticking a thousand
    /// devices allocates nothing.
    pub fn on_measure_tick_into(
        &mut self,
        now: SimTime,
        radio: &RadioEnvironment,
        out: &mut Vec<Outbound>,
    ) {
        // A crashed firmware neither measures nor speaks; the load keeps
        // drawing through true_grid_current regardless.
        if self.crashed {
            return;
        }

        // 1. Advance the handshake / registration state machine.
        let (commands, events) = self.network.poll(now, radio, self.position);
        self.apply_net_commands(commands, out);
        self.apply_net_events(events);

        // 2. Measure, if electrically connected.
        if let Some(sample) = self.physical.sample(now) {
            self.reported_series.push((now, sample.measured_current));
            self.forecaster.observe(sample.measured_current.value());
            if let Some(prev) = self.last_tick {
                let record = self.physical.build_record(
                    self.rtc.local_time(prev).as_micros(),
                    self.rtc.local_time(now).as_micros(),
                    sample.measured_current,
                    false,
                );
                self.billing
                    .add_interval(MilliampSeconds::new(record.charge_mas()), now);
                self.store.push(record);
                self.middleware.counters_mut().records_buffered += 1;
            }
            self.last_tick = Some(now);
        }

        // 3. Report everything unacknowledged when registered (unless a
        // fleet command muted reporting — records keep accumulating).
        if !self.reporting_enabled {
            return;
        }
        if let Some((aggregator, _kind, _slot)) = self.network.registration() {
            if !self.store.is_empty() {
                let records = self.pending_records_for_report(now);
                self.middleware.counters_mut().reports_sent += 1;
                out.push(Outbound {
                    to: aggregator,
                    packet: Packet::ConsumptionReport {
                        device: self.id(),
                        master: self.network.master(),
                        records,
                    },
                });
            }
        }
    }

    /// Handles a packet addressed to this device.
    pub fn on_packet(&mut self, packet: &Packet, now: SimTime) -> Vec<Outbound> {
        let mut out = Vec::new();
        self.on_packet_into(packet, now, &mut out);
        out
    }

    /// Like [`on_packet`](Self::on_packet), but appends the responses to a
    /// caller-provided buffer (see
    /// [`on_measure_tick_into`](Self::on_measure_tick_into)).
    pub fn on_packet_into(&mut self, packet: &Packet, now: SimTime, out: &mut Vec<Outbound>) {
        if self.crashed {
            return;
        }
        let (commands, events) = self.network.handle_packet(packet, now);
        self.apply_net_commands(commands, out);
        self.apply_net_events(events);
    }

    /// Executes a remote-management command.
    pub fn handle_management(
        &mut self,
        command: ManagementCommand,
        now: SimTime,
    ) -> ManagementResponse {
        match command {
            ManagementCommand::QueryStatus => ManagementResponse::Status {
                state: self.middleware.state(),
                counters: self.middleware.counters(),
                uptime: self.middleware.uptime(now),
            },
            ManagementCommand::Reset => {
                self.middleware.reset(now);
                ManagementResponse::Done
            }
            ManagementCommand::SetMeasureIntervalMs(ms) => {
                if ms == 0 {
                    ManagementResponse::Rejected("interval must be non-zero".to_string())
                } else {
                    // The configured Tmeasure lives in the middleware config;
                    // the simulation reads it when scheduling ticks.
                    ManagementResponse::Done
                }
            }
        }
    }

    fn pending_records_for_report(&mut self, now: SimTime) -> Vec<MeasurementRecord> {
        let fresh_threshold_us = self
            .rtc
            .local_time(now)
            .as_micros()
            .saturating_sub(2 * self.middleware.config().t_measure.as_micros());
        self.store
            .peek_all()
            .iter()
            .map(|r| {
                let mut r = *r;
                // Anything older than the last couple of intervals was held
                // in local storage across a connectivity gap.
                if r.interval_end_us < fresh_threshold_us {
                    r.backfilled = true;
                }
                r
            })
            .collect()
    }

    fn apply_net_commands(&mut self, commands: Vec<NetCommand>, out: &mut Vec<Outbound>) {
        for command in commands {
            match command {
                NetCommand::Send { to, packet } => out.push(Outbound { to, packet }),
            }
        }
    }

    fn apply_net_events(&mut self, events: Vec<NetEvent>) {
        for event in events {
            match event {
                NetEvent::Registered { breakdown, .. } => {
                    self.last_handshake = Some(breakdown);
                    self.middleware.enter_metering();
                }
                NetEvent::AckReceived { through_sequence } => {
                    self.middleware.counters_mut().acks_received += 1;
                    self.store.acknowledge_through(through_sequence);
                }
                NetEvent::NackReceived => {
                    self.middleware.counters_mut().nacks_received += 1;
                }
                NetEvent::RegistrationRejected { .. } | NetEvent::ScanFoundNothing => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network_mgmt::HandshakeTiming;
    use rtem_net::rssi::PathLossModel;
    use rtem_sensors::profile::ConstantProfile;
    use rtem_sim::time::SimDuration;

    fn radio() -> RadioEnvironment {
        let mut env = RadioEnvironment::new(PathLossModel::deterministic());
        env.place_aggregator(AggregatorAddr(1), Position::new(0.0, 0.0));
        env
    }

    fn test_device() -> MeteringDevice {
        let mut config = DeviceConfig::testbed(DeviceId(1));
        config.local_store_capacity = 64;
        MeteringDevice::new(
            config,
            ConstantProfile::new(120.0),
            Ina219Config::ideal(),
            HandshakeTiming::fast(),
            Tariff::flat(1.0),
            SimRng::seed_from_u64(3),
        )
    }

    /// Runs ticks every 100 ms until the device emits a registration request,
    /// then delivers an accept.
    fn register(device: &mut MeteringDevice, radio: &RadioEnvironment, start: SimTime) -> SimTime {
        let mut now = start;
        for _ in 0..200 {
            now += SimDuration::from_millis(100);
            let out = device.on_measure_tick(now, radio);
            if out
                .iter()
                .any(|o| matches!(o.packet, Packet::RegistrationRequest { .. }))
            {
                let accept = Packet::RegistrationAccept {
                    device: device.id(),
                    address: AggregatorAddr(1),
                    membership: MembershipKind::Master,
                    slot: 0,
                };
                device.on_packet(&accept, now);
                return now;
            }
        }
        panic!("device never attempted registration");
    }

    #[test]
    fn unplugged_device_neither_measures_nor_reports() {
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        let out = d.on_measure_tick(SimTime::from_millis(100), &radio());
        assert!(out.is_empty());
        assert_eq!(d.buffered_records(), 0);
        assert!(!d.is_plugged());
    }

    #[test]
    fn plugged_device_registers_and_reports() {
        let radio = radio();
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        d.plug_in(
            SimTime::from_millis(100),
            BranchId(0),
            Position::new(1.0, 0.0),
        );
        let registered_at = register(&mut d, &radio, SimTime::from_millis(100));
        assert!(d.is_registered());
        assert_eq!(d.master(), Some(AggregatorAddr(1)));
        assert_eq!(d.power_state(), PowerState::Metering);

        // The next ticks produce consumption reports.
        let mut reports = 0;
        let mut now = registered_at;
        for _ in 0..5 {
            now += SimDuration::from_millis(100);
            let out = d.on_measure_tick(now, &radio);
            reports += out
                .iter()
                .filter(|o| matches!(o.packet, Packet::ConsumptionReport { .. }))
                .count();
        }
        assert!(reports >= 4, "expected steady reporting, got {reports}");
        assert!(d.counters().reports_sent >= 4);
    }

    #[test]
    fn ack_clears_buffered_records() {
        let radio = radio();
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        d.plug_in(
            SimTime::from_millis(100),
            BranchId(0),
            Position::new(1.0, 0.0),
        );
        let mut now = register(&mut d, &radio, SimTime::from_millis(100));
        let mut last_seq = 0;
        for _ in 0..5 {
            now += SimDuration::from_millis(100);
            for o in d.on_measure_tick(now, &radio) {
                if let Packet::ConsumptionReport { records, .. } = o.packet {
                    last_seq = records.last().map(|r| r.sequence).unwrap_or(last_seq);
                }
            }
        }
        assert!(d.buffered_records() > 0);
        d.on_packet(
            &Packet::Ack {
                device: d.id(),
                through_sequence: last_seq,
            },
            now,
        );
        assert_eq!(d.buffered_records(), 0);
        assert_eq!(d.counters().acks_received, 1);
    }

    #[test]
    fn unacked_records_accumulate_and_are_marked_backfilled() {
        let radio = radio();
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        d.plug_in(
            SimTime::from_millis(100),
            BranchId(0),
            Position::new(1.0, 0.0),
        );
        let mut now = register(&mut d, &radio, SimTime::from_millis(100));
        // Never ack; after a while the report carries old records marked
        // backfilled plus the fresh one.
        let mut saw_backfilled = false;
        for _ in 0..20 {
            now += SimDuration::from_millis(100);
            for o in d.on_measure_tick(now, &radio) {
                if let Packet::ConsumptionReport { records, .. } = &o.packet {
                    if records.iter().any(|r| r.backfilled) && records.iter().any(|r| !r.backfilled)
                    {
                        saw_backfilled = true;
                    }
                }
            }
        }
        assert!(saw_backfilled);
        assert!(d.buffered_records() > 10);
    }

    #[test]
    fn nack_triggers_temporary_registration_request() {
        let radio = radio();
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        d.plug_in(
            SimTime::from_millis(100),
            BranchId(0),
            Position::new(1.0, 0.0),
        );
        let now = register(&mut d, &radio, SimTime::from_millis(100));
        // A foreign aggregator refuses the report.
        let out = d.on_packet(&Packet::Nack { device: d.id() }, now);
        let reg = out
            .iter()
            .find_map(|o| match &o.packet {
                Packet::RegistrationRequest { master, .. } => Some(*master),
                _ => None,
            })
            .expect("nack must trigger re-registration");
        assert_eq!(
            reg,
            Some(AggregatorAddr(1)),
            "master address must be included"
        );
        assert_eq!(d.counters().nacks_received, 1);
    }

    #[test]
    fn unplug_stops_measurement_but_keeps_master() {
        let radio = radio();
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        d.plug_in(
            SimTime::from_millis(100),
            BranchId(0),
            Position::new(1.0, 0.0),
        );
        let now = register(&mut d, &radio, SimTime::from_millis(100));
        d.unplug(now);
        assert!(!d.is_registered());
        assert_eq!(d.master(), Some(AggregatorAddr(1)));
        assert_eq!(d.power_state(), PowerState::Idle);
        let out = d.on_measure_tick(now + SimDuration::from_millis(100), &radio);
        assert!(out.is_empty());
    }

    #[test]
    fn billing_and_forecast_track_consumption() {
        let radio = radio();
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        d.plug_in(
            SimTime::from_millis(100),
            BranchId(0),
            Position::new(1.0, 0.0),
        );
        let mut now = register(&mut d, &radio, SimTime::from_millis(100));
        for _ in 0..50 {
            now += SimDuration::from_millis(100);
            d.on_measure_tick(now, &radio);
        }
        assert!(d.billing().total_energy().value() > 0.0);
        let forecast = d.forecaster().forecast(1).unwrap();
        assert!((forecast - 120.0).abs() < 10.0, "forecast {forecast}");
        assert!(!d.measured_series().is_empty());
    }

    #[test]
    fn crash_loses_buffer_and_restart_recovers() {
        let radio = radio();
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        d.plug_in(
            SimTime::from_millis(100),
            BranchId(0),
            Position::new(1.0, 0.0),
        );
        let mut now = register(&mut d, &radio, SimTime::from_millis(100));
        for _ in 0..5 {
            now += SimDuration::from_millis(100);
            d.on_measure_tick(now, &radio);
        }
        assert!(d.buffered_records() > 0);
        let lost = d.crash(now);
        assert!(lost > 0);
        assert!(d.is_crashed());
        assert_eq!(d.records_lost_to_crashes(), lost as u64);
        assert_eq!(d.buffered_records(), 0, "volatile buffer lost");
        assert!(!d.is_registered());
        assert_eq!(d.power_state(), PowerState::Fault);
        // While crashed the firmware is silent and deaf...
        now += SimDuration::from_millis(100);
        assert!(d.on_measure_tick(now, &radio).is_empty());
        assert!(d
            .on_packet(&Packet::Nack { device: d.id() }, now)
            .is_empty());
        // ...but the electrical load keeps drawing.
        assert!(d.true_grid_current(now).value() > 0.0);
        // Reboot: discovery restarts and the device re-registers.
        now += SimDuration::from_millis(100);
        d.restart(now);
        assert!(!d.is_crashed());
        assert_eq!(d.power_state(), PowerState::Idle);
        register(&mut d, &radio, now);
        assert!(d.is_registered());
    }

    #[test]
    fn persisted_store_survives_crash() {
        let radio = radio();
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        d.plug_in(
            SimTime::from_millis(100),
            BranchId(0),
            Position::new(1.0, 0.0),
        );
        let mut now = register(&mut d, &radio, SimTime::from_millis(100));
        d.set_persist_store(true);
        for _ in 0..5 {
            now += SimDuration::from_millis(100);
            d.on_measure_tick(now, &radio);
        }
        let buffered = d.buffered_records();
        assert!(buffered > 0);
        assert_eq!(d.crash(now), 0, "journaled store loses nothing");
        assert_eq!(d.buffered_records(), buffered);
        assert_eq!(d.records_lost_to_crashes(), 0);
        d.restart(now + SimDuration::from_millis(100));
        register(&mut d, &radio, now + SimDuration::from_millis(100));
        // Re-registration ticks keep measuring, so the journal only grows.
        assert!(
            d.buffered_records() >= buffered,
            "records await re-reporting"
        );
    }

    #[test]
    fn muted_reporting_buffers_and_resumes() {
        let radio = radio();
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        d.plug_in(
            SimTime::from_millis(100),
            BranchId(0),
            Position::new(1.0, 0.0),
        );
        let mut now = register(&mut d, &radio, SimTime::from_millis(100));
        d.set_reporting(false);
        for _ in 0..5 {
            now += SimDuration::from_millis(100);
            let out = d.on_measure_tick(now, &radio);
            assert!(
                !out.iter()
                    .any(|o| matches!(o.packet, Packet::ConsumptionReport { .. })),
                "muted device must not report"
            );
        }
        assert!(
            d.buffered_records() > 0,
            "measurement continues while muted"
        );
        d.set_reporting(true);
        now += SimDuration::from_millis(100);
        let out = d.on_measure_tick(now, &radio);
        assert!(
            out.iter()
                .any(|o| matches!(o.packet, Packet::ConsumptionReport { .. })),
            "reporting resumes with the buffered backlog"
        );
    }

    #[test]
    fn runtime_measure_interval_changes_are_validated() {
        let mut d = test_device();
        assert_eq!(d.measure_interval(), SimDuration::from_millis(100));
        assert!(!d.set_measure_interval(SimDuration::ZERO));
        assert_eq!(d.measure_interval(), SimDuration::from_millis(100));
        assert!(d.set_measure_interval(SimDuration::from_millis(500)));
        assert_eq!(d.measure_interval(), SimDuration::from_millis(500));
    }

    #[test]
    fn injected_sensor_fault_shapes_reports() {
        use rtem_sensors::fault::{SensorFault, SensorFaultKind};
        let radio = radio();
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        d.plug_in(
            SimTime::from_millis(100),
            BranchId(0),
            Position::new(1.0, 0.0),
        );
        let mut now = register(&mut d, &radio, SimTime::from_millis(100));
        d.inject_sensor_fault(SensorFault::new(
            SensorFaultKind::StuckAt { level_ma: 7.0 },
            now,
        ));
        assert!(d.sensor_fault().is_some());
        now += SimDuration::from_millis(100);
        d.on_measure_tick(now, &radio);
        let (_, last) = *d.measured_series().last().unwrap();
        assert_eq!(last.value(), 7.0, "stuck reading reported");
        d.clear_sensor_fault();
        now += SimDuration::from_millis(100);
        d.on_measure_tick(now, &radio);
        let (_, healed) = *d.measured_series().last().unwrap();
        assert_eq!(healed.value(), 120.0, "honest reading after healing");
    }

    #[test]
    fn management_interface_reports_status_and_resets() {
        let mut d = test_device();
        d.boot(SimTime::ZERO);
        match d.handle_management(ManagementCommand::QueryStatus, SimTime::from_secs(5)) {
            ManagementResponse::Status { state, uptime, .. } => {
                assert_eq!(state, PowerState::Idle);
                assert_eq!(uptime, Some(SimDuration::from_secs(5)));
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(
            d.handle_management(ManagementCommand::Reset, SimTime::from_secs(6)),
            ManagementResponse::Done
        );
        assert!(matches!(
            d.handle_management(
                ManagementCommand::SetMeasureIntervalMs(0),
                SimTime::from_secs(7)
            ),
            ManagementResponse::Rejected(_)
        ));
    }
}
