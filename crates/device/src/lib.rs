//! # rtem-device — the IoT-enabled metering device stack
//!
//! Part of the `rtem` workspace reproducing *Real-Time Energy Monitoring in
//! IoT-enabled Mobile Devices* (DATE 2020).
//!
//! The paper's Fig. 2 describes the software architecture an IoT-enabled
//! device needs for location-independent metering; this crate implements it
//! layer by layer:
//!
//! * [`physical`] — load + INA219 sampling + plug state (bottom layer).
//! * [`middleware`] — configuration, power states, health counters.
//! * [`network_mgmt`] — the registration / mobility state machine of Fig. 3
//!   including the Thandshake phase timing.
//! * [`data_layer`] — bounded store-and-forward buffer with integrity digest.
//! * [`application`] — billing estimate, demand prediction, remote management.
//! * [`device`] — [`MeteringDevice`], the composition
//!   driven by the simulation.
//!
//! # Examples
//!
//! ```
//! use rtem_device::device::MeteringDevice;
//! use rtem_net::packet::DeviceId;
//! use rtem_net::rssi::{PathLossModel, Position, RadioEnvironment};
//! use rtem_sensors::profile::ConstantProfile;
//! use rtem_sim::prelude::*;
//!
//! let mut device = MeteringDevice::testbed(
//!     DeviceId(1),
//!     ConstantProfile::new(120.0),
//!     SimRng::seed_from_u64(1),
//! );
//! device.boot(SimTime::ZERO);
//! // Without a grid connection the device neither measures nor reports.
//! let radio = RadioEnvironment::new(PathLossModel::deterministic());
//! assert!(device
//!     .on_measure_tick(SimTime::from_millis(100), &radio)
//!     .is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod application;
pub mod data_layer;
pub mod device;
pub mod middleware;
pub mod network_mgmt;
pub mod physical;

pub use application::{
    BillingEstimator, DemandForecaster, ManagementCommand, ManagementResponse, Tariff,
};
pub use data_layer::{LocalStore, StoreOutcome};
pub use device::{MeteringDevice, Outbound};
pub use middleware::{DeviceConfig, HealthCounters, Middleware, PowerState};
pub use network_mgmt::{
    HandshakeBreakdown, HandshakeTiming, NetCommand, NetEvent, NetState, NetworkManager,
};
pub use physical::{PhysicalLayer, PlugState, RawSample};
