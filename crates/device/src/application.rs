//! Application layer of the device stack (Fig. 2, top).
//!
//! The paper lists three application-layer features: 1) remote management
//! for monitoring and maintenance, 2) device-specific applications such as
//! demand prediction and schedule optimization, and 3) services such as
//! billing. This module provides all three in device-sized form: a tariff
//! and running bill estimate, an exponentially-weighted demand forecaster,
//! and a small remote-management command set.

use crate::middleware::{HealthCounters, PowerState};
use rtem_sensors::energy::{MilliampSeconds, Millivolts, MilliwattHours};
use rtem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A simple peak/off-peak tariff in currency units per mWh, used by the
/// *device-local* [`BillingEstimator`] only.
///
/// This is deliberately not the aggregator's richer
/// `rtem_aggregator::billing::Tariff` (flat / time-of-use / tiered /
/// demand-charge): a device-sized firmware keeps a two-rate approximation
/// of its operator's schedule, and the authoritative bill is always the
/// one the home aggregator computes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tariff {
    /// Price per mWh during the peak window.
    pub peak_price_per_mwh: f64,
    /// Price per mWh outside the peak window.
    pub off_peak_price_per_mwh: f64,
    /// Start of the daily peak window, seconds from midnight.
    pub peak_start_s: u64,
    /// End of the daily peak window, seconds from midnight.
    pub peak_end_s: u64,
}

impl Default for Tariff {
    fn default() -> Self {
        Tariff {
            peak_price_per_mwh: 0.00030,
            off_peak_price_per_mwh: 0.00018,
            peak_start_s: 18 * 3600,
            peak_end_s: 22 * 3600,
        }
    }
}

impl Tariff {
    /// A flat tariff (same price at all hours).
    pub fn flat(price_per_mwh: f64) -> Self {
        Tariff {
            peak_price_per_mwh: price_per_mwh,
            off_peak_price_per_mwh: price_per_mwh,
            peak_start_s: 0,
            peak_end_s: 0,
        }
    }

    /// Price applicable at `at` (simulation time interpreted as time of day,
    /// wrapping every 24 h).
    pub fn price_at(&self, at: SimTime) -> f64 {
        let second_of_day = at.as_micros() / 1_000_000 % 86_400;
        if self.peak_start_s <= second_of_day && second_of_day < self.peak_end_s {
            self.peak_price_per_mwh
        } else {
            self.off_peak_price_per_mwh
        }
    }
}

/// Device-local billing estimate so the owner can see cost in real time.
///
/// An *estimate*, not a mirror: it prices the device's own (pre-ack) meter
/// readings under the device's two-rate [`Tariff`] approximation, so it
/// tracks the aggregator's consolidated bill closely under a flat tariff
/// and only approximately under the aggregator's richer structures
/// (tiered ladders and demand charges need state only the home network
/// has).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillingEstimator {
    tariff: Tariff,
    supply: Millivolts,
    total_energy: MilliwattHours,
    total_cost: f64,
    intervals: u64,
}

impl BillingEstimator {
    /// Creates an estimator for a device on the given supply rail.
    pub fn new(tariff: Tariff, supply: Millivolts) -> Self {
        BillingEstimator {
            tariff,
            supply,
            total_energy: MilliwattHours::ZERO,
            total_cost: 0.0,
            intervals: 0,
        }
    }

    /// Swaps the tariff going forward (remote management). Energy already
    /// accounted keeps the price it was billed at.
    pub fn set_tariff(&mut self, tariff: Tariff) {
        self.tariff = tariff;
    }

    /// The tariff currently applied to new intervals.
    pub fn tariff(&self) -> Tariff {
        self.tariff
    }

    /// Accounts one measurement interval's charge at time `at`.
    pub fn add_interval(&mut self, charge: MilliampSeconds, at: SimTime) {
        let energy = charge.energy_at(self.supply);
        self.total_energy += energy;
        self.total_cost += energy.value() * self.tariff.price_at(at);
        self.intervals += 1;
    }

    /// Total metered energy so far.
    pub fn total_energy(&self) -> MilliwattHours {
        self.total_energy
    }

    /// Estimated cost so far, in currency units.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Number of intervals accounted.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }
}

/// Exponentially-weighted moving-average demand forecaster — the
/// "demand prediction" device application the paper mentions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandForecaster {
    alpha: f64,
    level_ma: Option<f64>,
    trend_ma_per_interval: f64,
    observations: u64,
}

impl DemandForecaster {
    /// Creates a forecaster with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        DemandForecaster {
            alpha,
            level_ma: None,
            trend_ma_per_interval: 0.0,
            observations: 0,
        }
    }

    /// Feeds one observed mean current (mA) for the latest interval.
    pub fn observe(&mut self, mean_current_ma: f64) {
        self.observations += 1;
        match self.level_ma {
            None => self.level_ma = Some(mean_current_ma),
            Some(prev) => {
                let new_level = self.alpha * mean_current_ma + (1.0 - self.alpha) * prev;
                // Damped trend estimate with the same smoothing factor.
                self.trend_ma_per_interval = self.alpha * (new_level - prev)
                    + (1.0 - self.alpha) * self.trend_ma_per_interval;
                self.level_ma = Some(new_level);
            }
        }
    }

    /// Forecast of the mean current `intervals_ahead` intervals from now, in
    /// mA (clamped at zero). Returns `None` before the first observation.
    pub fn forecast(&self, intervals_ahead: u64) -> Option<f64> {
        self.level_ma
            .map(|l| (l + self.trend_ma_per_interval * intervals_ahead as f64).max(0.0))
    }

    /// Number of observations fed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

/// Remote-management commands the aggregator / operator may issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ManagementCommand {
    /// Query health counters and state.
    QueryStatus,
    /// Reset the device firmware (clears faults).
    Reset,
    /// Change the reporting interval to the given number of milliseconds.
    SetMeasureIntervalMs(u64),
}

/// Response to a remote-management command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ManagementResponse {
    /// Current status snapshot.
    Status {
        /// Firmware power state.
        state: PowerState,
        /// Health counters.
        counters: HealthCounters,
        /// Uptime since last boot, if booted.
        uptime: Option<SimDuration>,
    },
    /// Command acknowledged.
    Done,
    /// Command rejected with a reason.
    Rejected(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_tariff_is_time_independent() {
        let t = Tariff::flat(0.5);
        assert_eq!(t.price_at(SimTime::ZERO), 0.5);
        assert_eq!(t.price_at(SimTime::from_secs(20 * 3600)), 0.5);
    }

    #[test]
    fn time_of_use_tariff_switches_at_peak_window() {
        let t = Tariff::default();
        assert_eq!(
            t.price_at(SimTime::from_secs(12 * 3600)),
            t.off_peak_price_per_mwh
        );
        assert_eq!(
            t.price_at(SimTime::from_secs(19 * 3600)),
            t.peak_price_per_mwh
        );
        // Wraps around midnight on the second simulated day.
        assert_eq!(
            t.price_at(SimTime::from_secs(86_400 + 19 * 3600)),
            t.peak_price_per_mwh
        );
    }

    #[test]
    fn billing_accumulates_energy_and_cost() {
        let mut b = BillingEstimator::new(Tariff::flat(1.0), Millivolts::usb_bus());
        // 3600 mA·s at 5 V = 5 mWh.
        b.add_interval(MilliampSeconds::new(3600.0), SimTime::ZERO);
        assert!((b.total_energy().value() - 5.0).abs() < 1e-9);
        assert!((b.total_cost() - 5.0).abs() < 1e-9);
        assert_eq!(b.intervals(), 1);
    }

    #[test]
    fn peak_intervals_cost_more() {
        let tariff = Tariff::default();
        let mut off_peak = BillingEstimator::new(tariff, Millivolts::usb_bus());
        let mut peak = BillingEstimator::new(tariff, Millivolts::usb_bus());
        off_peak.add_interval(MilliampSeconds::new(3600.0), SimTime::from_secs(10 * 3600));
        peak.add_interval(MilliampSeconds::new(3600.0), SimTime::from_secs(19 * 3600));
        assert!(peak.total_cost() > off_peak.total_cost());
        assert_eq!(peak.total_energy(), off_peak.total_energy());
    }

    #[test]
    fn forecaster_converges_to_constant_demand() {
        let mut f = DemandForecaster::new(0.2);
        assert!(f.forecast(1).is_none());
        for _ in 0..200 {
            f.observe(150.0);
        }
        let fc = f.forecast(10).unwrap();
        assert!((fc - 150.0).abs() < 1.0, "forecast {fc}");
        assert_eq!(f.observations(), 200);
    }

    #[test]
    fn forecaster_tracks_a_ramp() {
        let mut f = DemandForecaster::new(0.5);
        for i in 0..100 {
            f.observe(10.0 + i as f64);
        }
        let now = f.forecast(0).unwrap();
        let later = f.forecast(10).unwrap();
        assert!(later > now, "trend must push the forecast upwards");
    }

    #[test]
    fn forecast_never_negative() {
        let mut f = DemandForecaster::new(0.9);
        f.observe(100.0);
        for _ in 0..50 {
            f.observe(0.0);
        }
        assert!(f.forecast(100).unwrap() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = DemandForecaster::new(0.0);
    }
}
