//! The append-only hash chain.
//!
//! "The blocks from all the aggregators are formed into a common permissioned
//! blockchain. Blockchain is only used as a hashed data chain without any
//! consensus" (§II-A). [`HashChain`] implements exactly that: an append-only
//! sequence of [`Block`]s where each block commits to the previous block's
//! header hash, writable only by registered (permissioned) writers.

use crate::block::{Block, RecordBytes, WriterId};
use crate::sha256::Digest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Errors returned when appending to or verifying a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The writer is not in the permissioned set.
    UnauthorizedWriter(WriterId),
    /// The appended block's `previous` digest does not match the chain head.
    BrokenLink {
        /// Height at which the mismatch occurred.
        at_index: u64,
    },
    /// The appended block's index is not `head + 1`.
    BadIndex {
        /// Expected block index.
        expected: u64,
        /// Index carried by the rejected block.
        found: u64,
    },
    /// A block's timestamp is older than its predecessor's.
    NonMonotonicTime {
        /// Height at which time went backwards.
        at_index: u64,
    },
    /// A block's stored records do not match its header commitment.
    InconsistentBlock {
        /// Height of the inconsistent block.
        at_index: u64,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnauthorizedWriter(w) => write!(f, "writer {w} is not permissioned"),
            ChainError::BrokenLink { at_index } => {
                write!(f, "previous-hash link broken at block {at_index}")
            }
            ChainError::BadIndex { expected, found } => {
                write!(f, "expected block index {expected}, found {found}")
            }
            ChainError::NonMonotonicTime { at_index } => {
                write!(f, "timestamp went backwards at block {at_index}")
            }
            ChainError::InconsistentBlock { at_index } => {
                write!(
                    f,
                    "records do not match header commitment at block {at_index}"
                )
            }
        }
    }
}

impl Error for ChainError {}

/// Summary of a sealed-and-evicted chain prefix.
///
/// Streaming compaction drops old blocks from memory but must keep the
/// chain verifiable and its counters exact: the retained suffix still links
/// to `last_hash`, and `len`/`total_records` still cover the whole history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedPrefix {
    /// Number of blocks evicted (including genesis once it is evicted).
    pub blocks: usize,
    /// Number of records the evicted blocks carried.
    pub records: usize,
    /// Height of the last evicted block.
    pub last_index: u64,
    /// Hash of the last evicted block — the retained suffix must link here.
    pub last_hash: Digest,
    /// Sealing timestamp of the last evicted block.
    pub last_timestamp_us: u64,
}

/// A permissioned, consensus-free hash chain of measurement blocks.
///
/// # Examples
///
/// ```
/// use rtem_chain::chain::HashChain;
///
/// let mut chain = HashChain::new(1, 0);
/// chain.register_writer(2);
/// chain.seal_block(2, 1_000_000, vec![b"record".to_vec()]).unwrap();
/// assert_eq!(chain.len(), 2); // genesis + one sealed block
/// assert!(chain.verify().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashChain {
    blocks: Vec<Block>,
    writers: BTreeSet<WriterId>,
    /// Sealed summary of the evicted prefix; `None` until the first
    /// eviction, so an uncompacted chain is bit-identical with before.
    evicted: Option<EvictedPrefix>,
}

impl HashChain {
    /// Creates a chain with a genesis block written by `genesis_writer` at
    /// `timestamp_us`. The genesis writer is automatically permissioned.
    pub fn new(genesis_writer: WriterId, timestamp_us: u64) -> Self {
        let mut writers = BTreeSet::new();
        writers.insert(genesis_writer);
        HashChain {
            blocks: vec![Block::genesis(genesis_writer, timestamp_us)],
            writers,
            evicted: None,
        }
    }

    /// Adds a writer to the permissioned set.
    pub fn register_writer(&mut self, writer: WriterId) {
        self.writers.insert(writer);
    }

    /// Removes a writer from the permissioned set. Returns `true` if it was
    /// present. Blocks it already wrote remain valid.
    pub fn revoke_writer(&mut self, writer: WriterId) -> bool {
        self.writers.remove(&writer)
    }

    /// Returns `true` if `writer` may seal blocks.
    pub fn is_writer(&self, writer: WriterId) -> bool {
        self.writers.contains(&writer)
    }

    /// Number of blocks ever committed, including genesis and any evicted
    /// prefix — eviction never changes this count.
    pub fn len(&self) -> usize {
        self.evicted.map_or(0, |e| e.blocks) + self.blocks.len()
    }

    /// Number of blocks still resident in memory.
    pub fn retained_len(&self) -> usize {
        self.blocks.len()
    }

    /// A chain always has at least a genesis block.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sealed summary of the evicted prefix, if any blocks were evicted.
    pub fn evicted(&self) -> Option<&EvictedPrefix> {
        self.evicted.as_ref()
    }

    /// Height of the oldest block still resident (0 when nothing was
    /// evicted).
    pub fn first_retained_index(&self) -> u64 {
        self.evicted.map_or(0, |e| e.last_index + 1)
    }

    /// The most recent block.
    pub fn head(&self) -> &Block {
        self.blocks.last().expect("chain always has genesis")
    }

    /// Digest of the chain head — publish this out-of-band to anchor audits.
    pub fn head_hash(&self) -> Digest {
        self.head().hash()
    }

    /// The block at height `index`, if still resident.
    pub fn block(&self, index: u64) -> Option<&Block> {
        let offset = index.checked_sub(self.first_retained_index())?;
        self.blocks.get(offset as usize)
    }

    /// Iterates over the resident blocks in height order (all blocks unless
    /// a prefix was evicted).
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Total number of records ever committed, including records in evicted
    /// blocks — eviction never changes this count.
    pub fn total_records(&self) -> usize {
        self.evicted.map_or(0, |e| e.records)
            + self.blocks.iter().map(Block::record_count).sum::<usize>()
    }

    /// Evicts every resident block sealed strictly before `timestamp_us`,
    /// always retaining at least the head block. The evicted blocks fold
    /// into the [`EvictedPrefix`] summary, so `len`, `total_records`,
    /// [`verify`](Self::verify) and audits stay exact over the retained
    /// suffix. Returns the evicted blocks in height order so callers can
    /// fold their records into their own sealed summaries before the
    /// storage is dropped.
    pub fn evict_before(&mut self, timestamp_us: u64) -> Vec<Block> {
        let cut = self
            .blocks
            .iter()
            .take(self.blocks.len() - 1)
            .take_while(|b| b.header().timestamp_us < timestamp_us)
            .count();
        if cut == 0 {
            return Vec::new();
        }
        let evicted: Vec<Block> = self.blocks.drain(..cut).collect();
        let last = evicted.last().expect("cut > 0");
        let summary = self.evicted.get_or_insert(EvictedPrefix {
            blocks: 0,
            records: 0,
            last_index: 0,
            last_hash: Digest::ZERO,
            last_timestamp_us: 0,
        });
        summary.blocks += evicted.len();
        summary.records += evicted.iter().map(Block::record_count).sum::<usize>();
        summary.last_index = last.header().index;
        summary.last_hash = last.hash();
        summary.last_timestamp_us = last.header().timestamp_us;
        evicted
    }

    /// Seals a new block over `records` and appends it.
    ///
    /// # Errors
    ///
    /// Fails if `writer` is not permissioned or `timestamp_us` is older than
    /// the head block's timestamp.
    pub fn seal_block(
        &mut self,
        writer: WriterId,
        timestamp_us: u64,
        records: Vec<RecordBytes>,
    ) -> Result<Digest, ChainError> {
        if !self.writers.contains(&writer) {
            return Err(ChainError::UnauthorizedWriter(writer));
        }
        let head = self.head();
        if timestamp_us < head.header().timestamp_us {
            return Err(ChainError::NonMonotonicTime {
                at_index: head.header().index + 1,
            });
        }
        let block = Block::new(
            head.header().index + 1,
            head.hash(),
            writer,
            timestamp_us,
            records,
        );
        let hash = block.hash();
        self.blocks.push(block);
        Ok(hash)
    }

    /// Appends an externally constructed block (e.g. received from another
    /// aggregator), validating linkage, index, writer and consistency.
    ///
    /// # Errors
    ///
    /// Returns the specific [`ChainError`] describing why the block was
    /// rejected.
    pub fn append_block(&mut self, block: Block) -> Result<Digest, ChainError> {
        if !self.writers.contains(&block.header().writer) {
            return Err(ChainError::UnauthorizedWriter(block.header().writer));
        }
        let head = self.head();
        let expected_index = head.header().index + 1;
        if block.header().index != expected_index {
            return Err(ChainError::BadIndex {
                expected: expected_index,
                found: block.header().index,
            });
        }
        if block.header().previous != head.hash() {
            return Err(ChainError::BrokenLink {
                at_index: block.header().index,
            });
        }
        if block.header().timestamp_us < head.header().timestamp_us {
            return Err(ChainError::NonMonotonicTime {
                at_index: block.header().index,
            });
        }
        if !block.is_internally_consistent() {
            return Err(ChainError::InconsistentBlock {
                at_index: block.header().index,
            });
        }
        let hash = block.hash();
        self.blocks.push(block);
        Ok(hash)
    }

    /// Verifies the resident chain: internal consistency of every block,
    /// hash linkage, index continuity and timestamp monotonicity. When a
    /// prefix was evicted, the first retained block is checked against the
    /// sealed [`EvictedPrefix`] summary instead of a resident predecessor.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, scanning from the oldest resident
    /// block.
    pub fn verify(&self) -> Result<(), ChainError> {
        let first = self.first_retained_index();
        for (i, block) in self.blocks.iter().enumerate() {
            let height = first + i as u64;
            if block.header().index != height {
                return Err(ChainError::BadIndex {
                    expected: height,
                    found: block.header().index,
                });
            }
            if !block.is_internally_consistent() {
                return Err(ChainError::InconsistentBlock { at_index: height });
            }
            let prev = if i > 0 {
                let prev = &self.blocks[i - 1];
                Some((prev.hash(), prev.header().timestamp_us))
            } else {
                self.evicted.map(|e| (e.last_hash, e.last_timestamp_us))
            };
            if let Some((prev_hash, prev_time)) = prev {
                if block.header().previous != prev_hash {
                    return Err(ChainError::BrokenLink { at_index: height });
                }
                if block.header().timestamp_us < prev_time {
                    return Err(ChainError::NonMonotonicTime { at_index: height });
                }
            }
        }
        Ok(())
    }

    /// Fault injection for the tamper experiments: returns mutable access to
    /// a block so a storage-level attacker can be simulated. Not part of the
    /// normal API surface.
    pub fn block_mut_for_experiment(&mut self, index: u64) -> Option<&mut Block> {
        let offset = index.checked_sub(self.first_retained_index())?;
        self.blocks.get_mut(offset as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(tag: &str, n: usize) -> Vec<RecordBytes> {
        (0..n).map(|i| format!("{tag}-{i}").into_bytes()).collect()
    }

    fn small_chain() -> HashChain {
        let mut chain = HashChain::new(1, 0);
        chain.register_writer(2);
        chain.seal_block(1, 100, records("a", 3)).unwrap();
        chain.seal_block(2, 200, records("b", 2)).unwrap();
        chain.seal_block(1, 300, records("c", 4)).unwrap();
        chain
    }

    #[test]
    fn seal_and_verify() {
        let chain = small_chain();
        assert_eq!(chain.len(), 4);
        assert_eq!(chain.total_records(), 9);
        assert!(chain.verify().is_ok());
        assert!(!chain.is_empty());
    }

    #[test]
    fn unauthorized_writer_rejected() {
        let mut chain = HashChain::new(1, 0);
        assert_eq!(
            chain.seal_block(9, 100, vec![]),
            Err(ChainError::UnauthorizedWriter(9))
        );
        chain.register_writer(9);
        assert!(chain.seal_block(9, 100, vec![]).is_ok());
        assert!(chain.revoke_writer(9));
        assert!(!chain.is_writer(9));
        assert!(chain.seal_block(9, 200, vec![]).is_err());
    }

    #[test]
    fn timestamps_must_not_go_backwards() {
        let mut chain = HashChain::new(1, 1000);
        assert_eq!(
            chain.seal_block(1, 999, vec![]),
            Err(ChainError::NonMonotonicTime { at_index: 1 })
        );
        assert!(chain.seal_block(1, 1000, vec![]).is_ok());
    }

    #[test]
    fn append_external_block_happy_path() {
        let mut chain = HashChain::new(1, 0);
        chain.register_writer(2);
        let block = Block::new(1, chain.head_hash(), 2, 50, records("x", 2));
        assert!(chain.append_block(block).is_ok());
        assert!(chain.verify().is_ok());
    }

    #[test]
    fn append_rejects_bad_index_and_link() {
        let mut chain = HashChain::new(1, 0);
        let wrong_index = Block::new(5, chain.head_hash(), 1, 50, vec![]);
        assert_eq!(
            chain.append_block(wrong_index),
            Err(ChainError::BadIndex {
                expected: 1,
                found: 5
            })
        );
        let wrong_link = Block::new(1, Digest::ZERO, 1, 50, vec![]);
        assert!(matches!(
            chain.append_block(wrong_link),
            Err(ChainError::BrokenLink { at_index: 1 })
        ));
    }

    #[test]
    fn append_rejects_inconsistent_block() {
        let mut chain = HashChain::new(1, 0);
        let mut block = Block::new(1, chain.head_hash(), 1, 50, records("x", 3));
        block.tamper_record_for_experiment(0, b"evil".to_vec());
        assert_eq!(
            chain.append_block(block),
            Err(ChainError::InconsistentBlock { at_index: 1 })
        );
    }

    #[test]
    fn verify_detects_record_tampering() {
        let mut chain = small_chain();
        chain
            .block_mut_for_experiment(2)
            .unwrap()
            .tamper_record_for_experiment(1, b"fraud".to_vec());
        assert_eq!(
            chain.verify(),
            Err(ChainError::InconsistentBlock { at_index: 2 })
        );
    }

    #[test]
    fn head_hash_tracks_latest_block() {
        let mut chain = HashChain::new(1, 0);
        let h0 = chain.head_hash();
        chain.seal_block(1, 10, records("a", 1)).unwrap();
        let h1 = chain.head_hash();
        assert_ne!(h0, h1);
        assert_eq!(chain.head().header().index, 1);
        assert_eq!(chain.block(1).unwrap().hash(), h1);
        assert!(chain.block(99).is_none());
    }

    #[test]
    fn eviction_preserves_counts_and_verification() {
        let mut chain = small_chain();
        let (len, records, head) = (chain.len(), chain.total_records(), chain.head_hash());
        // Evict everything sealed before t=300 (genesis + two blocks).
        let evicted = chain.evict_before(300);
        assert_eq!(evicted.len(), 3);
        assert_eq!(chain.retained_len(), 1);
        assert_eq!(chain.first_retained_index(), 3);
        assert_eq!(chain.len(), len, "eviction never changes len");
        assert_eq!(chain.total_records(), records);
        assert_eq!(chain.head_hash(), head);
        assert!(chain.verify().is_ok());
        let summary = chain.evicted().unwrap();
        assert_eq!(summary.blocks, 3);
        assert_eq!(summary.records, 5);
        assert_eq!(summary.last_index, 2);
        assert_eq!(summary.last_timestamp_us, 200);
        // Height-addressed access still works on the retained suffix.
        assert!(chain.block(2).is_none());
        assert_eq!(chain.block(3).unwrap().header().index, 3);
    }

    #[test]
    fn eviction_always_retains_the_head() {
        let mut chain = small_chain();
        assert_eq!(chain.evict_before(u64::MAX).len(), 3);
        assert_eq!(chain.retained_len(), 1);
        // A second sweep has nothing left to evict.
        assert!(chain.evict_before(u64::MAX).is_empty());
        assert!(chain.verify().is_ok());
    }

    #[test]
    fn evicted_chain_keeps_growing_and_verifying() {
        let mut chain = small_chain();
        chain.evict_before(250);
        chain.seal_block(1, 400, records("d", 2)).unwrap();
        chain.seal_block(2, 500, records("e", 1)).unwrap();
        assert_eq!(chain.len(), 6);
        assert_eq!(chain.total_records(), 12);
        assert!(chain.verify().is_ok());
        // Incremental eviction folds into the same summary.
        chain.evict_before(450);
        assert_eq!(chain.evicted().unwrap().blocks, 5);
        assert_eq!(chain.len(), 6);
        assert!(chain.verify().is_ok());
    }

    #[test]
    fn tampering_in_the_retained_suffix_is_still_caught() {
        let mut chain = small_chain();
        chain.evict_before(200); // genesis + block 1 evicted
        chain
            .block_mut_for_experiment(2)
            .unwrap()
            .tamper_record_for_experiment(0, b"fraud".to_vec());
        assert_eq!(
            chain.verify(),
            Err(ChainError::InconsistentBlock { at_index: 2 })
        );
    }

    #[test]
    fn first_retained_block_must_link_to_the_evicted_summary() {
        let mut chain = small_chain();
        chain.evict_before(200);
        // Replace the first retained block with a re-sealed forgery that
        // does not link to the sealed prefix.
        let forged = Block::new(2, Digest::ZERO, 1, 200, vec![b"forged".to_vec()]);
        *chain.block_mut_for_experiment(2).unwrap() = forged;
        assert!(matches!(
            chain.verify(),
            Err(ChainError::BrokenLink { at_index: 2 })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ChainError::UnauthorizedWriter(3).to_string().contains("3"));
        assert!(ChainError::BrokenLink { at_index: 2 }
            .to_string()
            .contains("2"));
        assert!(ChainError::BadIndex {
            expected: 1,
            found: 9
        }
        .to_string()
        .contains("9"));
        assert!(ChainError::NonMonotonicTime { at_index: 4 }
            .to_string()
            .contains("4"));
        assert!(ChainError::InconsistentBlock { at_index: 5 }
            .to_string()
            .contains("5"));
    }
}
