//! The append-only hash chain.
//!
//! "The blocks from all the aggregators are formed into a common permissioned
//! blockchain. Blockchain is only used as a hashed data chain without any
//! consensus" (§II-A). [`HashChain`] implements exactly that: an append-only
//! sequence of [`Block`]s where each block commits to the previous block's
//! header hash, writable only by registered (permissioned) writers.

use crate::block::{Block, RecordBytes, WriterId};
use crate::sha256::Digest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Errors returned when appending to or verifying a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The writer is not in the permissioned set.
    UnauthorizedWriter(WriterId),
    /// The appended block's `previous` digest does not match the chain head.
    BrokenLink {
        /// Height at which the mismatch occurred.
        at_index: u64,
    },
    /// The appended block's index is not `head + 1`.
    BadIndex {
        /// Expected block index.
        expected: u64,
        /// Index carried by the rejected block.
        found: u64,
    },
    /// A block's timestamp is older than its predecessor's.
    NonMonotonicTime {
        /// Height at which time went backwards.
        at_index: u64,
    },
    /// A block's stored records do not match its header commitment.
    InconsistentBlock {
        /// Height of the inconsistent block.
        at_index: u64,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnauthorizedWriter(w) => write!(f, "writer {w} is not permissioned"),
            ChainError::BrokenLink { at_index } => {
                write!(f, "previous-hash link broken at block {at_index}")
            }
            ChainError::BadIndex { expected, found } => {
                write!(f, "expected block index {expected}, found {found}")
            }
            ChainError::NonMonotonicTime { at_index } => {
                write!(f, "timestamp went backwards at block {at_index}")
            }
            ChainError::InconsistentBlock { at_index } => {
                write!(
                    f,
                    "records do not match header commitment at block {at_index}"
                )
            }
        }
    }
}

impl Error for ChainError {}

/// A permissioned, consensus-free hash chain of measurement blocks.
///
/// # Examples
///
/// ```
/// use rtem_chain::chain::HashChain;
///
/// let mut chain = HashChain::new(1, 0);
/// chain.register_writer(2);
/// chain.seal_block(2, 1_000_000, vec![b"record".to_vec()]).unwrap();
/// assert_eq!(chain.len(), 2); // genesis + one sealed block
/// assert!(chain.verify().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashChain {
    blocks: Vec<Block>,
    writers: BTreeSet<WriterId>,
}

impl HashChain {
    /// Creates a chain with a genesis block written by `genesis_writer` at
    /// `timestamp_us`. The genesis writer is automatically permissioned.
    pub fn new(genesis_writer: WriterId, timestamp_us: u64) -> Self {
        let mut writers = BTreeSet::new();
        writers.insert(genesis_writer);
        HashChain {
            blocks: vec![Block::genesis(genesis_writer, timestamp_us)],
            writers,
        }
    }

    /// Adds a writer to the permissioned set.
    pub fn register_writer(&mut self, writer: WriterId) {
        self.writers.insert(writer);
    }

    /// Removes a writer from the permissioned set. Returns `true` if it was
    /// present. Blocks it already wrote remain valid.
    pub fn revoke_writer(&mut self, writer: WriterId) -> bool {
        self.writers.remove(&writer)
    }

    /// Returns `true` if `writer` may seal blocks.
    pub fn is_writer(&self, writer: WriterId) -> bool {
        self.writers.contains(&writer)
    }

    /// Number of blocks, including genesis.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// A chain always has at least a genesis block.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The most recent block.
    pub fn head(&self) -> &Block {
        self.blocks.last().expect("chain always has genesis")
    }

    /// Digest of the chain head — publish this out-of-band to anchor audits.
    pub fn head_hash(&self) -> Digest {
        self.head().hash()
    }

    /// The block at `index`, if present.
    pub fn block(&self, index: u64) -> Option<&Block> {
        self.blocks.get(index as usize)
    }

    /// Iterates over all blocks in height order.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Total number of records committed across all blocks.
    pub fn total_records(&self) -> usize {
        self.blocks.iter().map(Block::record_count).sum()
    }

    /// Seals a new block over `records` and appends it.
    ///
    /// # Errors
    ///
    /// Fails if `writer` is not permissioned or `timestamp_us` is older than
    /// the head block's timestamp.
    pub fn seal_block(
        &mut self,
        writer: WriterId,
        timestamp_us: u64,
        records: Vec<RecordBytes>,
    ) -> Result<Digest, ChainError> {
        if !self.writers.contains(&writer) {
            return Err(ChainError::UnauthorizedWriter(writer));
        }
        let head = self.head();
        if timestamp_us < head.header().timestamp_us {
            return Err(ChainError::NonMonotonicTime {
                at_index: head.header().index + 1,
            });
        }
        let block = Block::new(
            head.header().index + 1,
            head.hash(),
            writer,
            timestamp_us,
            records,
        );
        let hash = block.hash();
        self.blocks.push(block);
        Ok(hash)
    }

    /// Appends an externally constructed block (e.g. received from another
    /// aggregator), validating linkage, index, writer and consistency.
    ///
    /// # Errors
    ///
    /// Returns the specific [`ChainError`] describing why the block was
    /// rejected.
    pub fn append_block(&mut self, block: Block) -> Result<Digest, ChainError> {
        if !self.writers.contains(&block.header().writer) {
            return Err(ChainError::UnauthorizedWriter(block.header().writer));
        }
        let head = self.head();
        let expected_index = head.header().index + 1;
        if block.header().index != expected_index {
            return Err(ChainError::BadIndex {
                expected: expected_index,
                found: block.header().index,
            });
        }
        if block.header().previous != head.hash() {
            return Err(ChainError::BrokenLink {
                at_index: block.header().index,
            });
        }
        if block.header().timestamp_us < head.header().timestamp_us {
            return Err(ChainError::NonMonotonicTime {
                at_index: block.header().index,
            });
        }
        if !block.is_internally_consistent() {
            return Err(ChainError::InconsistentBlock {
                at_index: block.header().index,
            });
        }
        let hash = block.hash();
        self.blocks.push(block);
        Ok(hash)
    }

    /// Verifies the whole chain: internal consistency of every block,
    /// hash linkage, index continuity and timestamp monotonicity.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, scanning from genesis.
    pub fn verify(&self) -> Result<(), ChainError> {
        for (i, block) in self.blocks.iter().enumerate() {
            if block.header().index != i as u64 {
                return Err(ChainError::BadIndex {
                    expected: i as u64,
                    found: block.header().index,
                });
            }
            if !block.is_internally_consistent() {
                return Err(ChainError::InconsistentBlock { at_index: i as u64 });
            }
            if i > 0 {
                let prev = &self.blocks[i - 1];
                if block.header().previous != prev.hash() {
                    return Err(ChainError::BrokenLink { at_index: i as u64 });
                }
                if block.header().timestamp_us < prev.header().timestamp_us {
                    return Err(ChainError::NonMonotonicTime { at_index: i as u64 });
                }
            }
        }
        Ok(())
    }

    /// Fault injection for the tamper experiments: returns mutable access to
    /// a block so a storage-level attacker can be simulated. Not part of the
    /// normal API surface.
    pub fn block_mut_for_experiment(&mut self, index: u64) -> Option<&mut Block> {
        self.blocks.get_mut(index as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(tag: &str, n: usize) -> Vec<RecordBytes> {
        (0..n).map(|i| format!("{tag}-{i}").into_bytes()).collect()
    }

    fn small_chain() -> HashChain {
        let mut chain = HashChain::new(1, 0);
        chain.register_writer(2);
        chain.seal_block(1, 100, records("a", 3)).unwrap();
        chain.seal_block(2, 200, records("b", 2)).unwrap();
        chain.seal_block(1, 300, records("c", 4)).unwrap();
        chain
    }

    #[test]
    fn seal_and_verify() {
        let chain = small_chain();
        assert_eq!(chain.len(), 4);
        assert_eq!(chain.total_records(), 9);
        assert!(chain.verify().is_ok());
        assert!(!chain.is_empty());
    }

    #[test]
    fn unauthorized_writer_rejected() {
        let mut chain = HashChain::new(1, 0);
        assert_eq!(
            chain.seal_block(9, 100, vec![]),
            Err(ChainError::UnauthorizedWriter(9))
        );
        chain.register_writer(9);
        assert!(chain.seal_block(9, 100, vec![]).is_ok());
        assert!(chain.revoke_writer(9));
        assert!(!chain.is_writer(9));
        assert!(chain.seal_block(9, 200, vec![]).is_err());
    }

    #[test]
    fn timestamps_must_not_go_backwards() {
        let mut chain = HashChain::new(1, 1000);
        assert_eq!(
            chain.seal_block(1, 999, vec![]),
            Err(ChainError::NonMonotonicTime { at_index: 1 })
        );
        assert!(chain.seal_block(1, 1000, vec![]).is_ok());
    }

    #[test]
    fn append_external_block_happy_path() {
        let mut chain = HashChain::new(1, 0);
        chain.register_writer(2);
        let block = Block::new(1, chain.head_hash(), 2, 50, records("x", 2));
        assert!(chain.append_block(block).is_ok());
        assert!(chain.verify().is_ok());
    }

    #[test]
    fn append_rejects_bad_index_and_link() {
        let mut chain = HashChain::new(1, 0);
        let wrong_index = Block::new(5, chain.head_hash(), 1, 50, vec![]);
        assert_eq!(
            chain.append_block(wrong_index),
            Err(ChainError::BadIndex {
                expected: 1,
                found: 5
            })
        );
        let wrong_link = Block::new(1, Digest::ZERO, 1, 50, vec![]);
        assert!(matches!(
            chain.append_block(wrong_link),
            Err(ChainError::BrokenLink { at_index: 1 })
        ));
    }

    #[test]
    fn append_rejects_inconsistent_block() {
        let mut chain = HashChain::new(1, 0);
        let mut block = Block::new(1, chain.head_hash(), 1, 50, records("x", 3));
        block.tamper_record_for_experiment(0, b"evil".to_vec());
        assert_eq!(
            chain.append_block(block),
            Err(ChainError::InconsistentBlock { at_index: 1 })
        );
    }

    #[test]
    fn verify_detects_record_tampering() {
        let mut chain = small_chain();
        chain
            .block_mut_for_experiment(2)
            .unwrap()
            .tamper_record_for_experiment(1, b"fraud".to_vec());
        assert_eq!(
            chain.verify(),
            Err(ChainError::InconsistentBlock { at_index: 2 })
        );
    }

    #[test]
    fn head_hash_tracks_latest_block() {
        let mut chain = HashChain::new(1, 0);
        let h0 = chain.head_hash();
        chain.seal_block(1, 10, records("a", 1)).unwrap();
        let h1 = chain.head_hash();
        assert_ne!(h0, h1);
        assert_eq!(chain.head().header().index, 1);
        assert_eq!(chain.block(1).unwrap().hash(), h1);
        assert!(chain.block(99).is_none());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ChainError::UnauthorizedWriter(3).to_string().contains("3"));
        assert!(ChainError::BrokenLink { at_index: 2 }
            .to_string()
            .contains("2"));
        assert!(ChainError::BadIndex {
            expected: 1,
            found: 9
        }
        .to_string()
        .contains("9"));
        assert!(ChainError::NonMonotonicTime { at_index: 4 }
            .to_string()
            .contains("4"));
        assert!(ChainError::InconsistentBlock { at_index: 5 }
            .to_string()
            .contains("5"));
    }
}
