//! SHA-256, implemented from scratch.
//!
//! The aggregator chains measurement blocks by hashing "the reported data and
//! the hash of the previous block" (§II-A). To keep the workspace inside the
//! approved dependency set, the hash function is implemented here rather than
//! pulled in as a crate. The implementation follows FIPS 180-4 and is tested
//! against the standard test vectors.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A 256-bit digest.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the previous-hash of a genesis block.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 64-character hex string.
    ///
    /// Returns `None` if the string is not exactly 64 hex characters.
    pub fn from_hex(hex: &str) -> Option<Digest> {
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// The raw bytes of the digest.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use rtem_chain::sha256::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"abc");
/// let digest = hasher.finalize();
/// assert_eq!(
///     digest.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Convenience: hash a single byte slice.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Convenience: hash the concatenation of several byte slices without
    /// allocating an intermediate buffer.
    pub fn digest_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Feeds more data into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Completes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero padding then the 64-bit length.
        self.update(&[0x80]);
        // update() changed total_len but padding does not count; we only need
        // the buffer mechanics, so remember and keep writing zeros until the
        // buffer has exactly 8 bytes left.
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVS reference vectors.
    const VECTORS: &[(&str, &str)] = &[
        (
            "",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            "abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];

    #[test]
    fn nist_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(
                Sha256::digest(input.as_bytes()).to_hex(),
                *expected,
                "vector '{input}'"
            );
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"The aggregator stores the consumption data in a blockchain.";
        let one_shot = Sha256::digest(data);
        for split in [1usize, 7, 13, 31, 59] {
            let mut h = Sha256::new();
            for chunk in data.chunks(split) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), one_shot, "split {split}");
        }
    }

    #[test]
    fn digest_parts_equals_concatenation() {
        let a = b"hello ";
        let b = b"world";
        assert_eq!(
            Sha256::digest_parts(&[a, b]),
            Sha256::digest(b"hello world")
        );
    }

    #[test]
    fn different_inputs_different_digests() {
        assert_ne!(Sha256::digest(b"block-1"), Sha256::digest(b"block-2"));
    }

    #[test]
    fn hex_round_trip() {
        let d = Sha256::digest(b"round trip");
        let parsed = Digest::from_hex(&d.to_hex()).unwrap();
        assert_eq!(parsed, d);
        assert_eq!(d.to_string(), d.to_hex());
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Digest::from_hex("abc").is_none());
        assert!(Digest::from_hex(&"g".repeat(64)).is_none());
    }

    #[test]
    fn zero_digest_is_all_zero() {
        assert_eq!(Digest::ZERO.as_bytes(), &[0u8; 32]);
        assert_eq!(Digest::ZERO.to_hex(), "0".repeat(64));
    }

    #[test]
    fn long_input_crossing_many_blocks() {
        // 200 bytes crosses three 64-byte blocks with a partial tail.
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let d1 = Sha256::digest(&data);
        let mut h = Sha256::new();
        h.update(&data[..63]);
        h.update(&data[63..64]);
        h.update(&data[64..129]);
        h.update(&data[129..]);
        assert_eq!(h.finalize(), d1);
    }
}
