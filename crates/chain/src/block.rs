//! Blocks of the consumption-data chain.
//!
//! Each aggregator periodically seals the measurement records it has
//! verified into a block. Following §II-A, a block's hash is computed from
//! the reported data (via a Merkle root) and the hash of the previous block;
//! no proof-of-work or consensus is involved because the aggregators are
//! trusted validators.

use crate::merkle::{merkle_root, MerkleProof};
use crate::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};

/// Identifier of the entity allowed to write blocks (an aggregator address).
pub type WriterId = u32;

/// The canonical byte encoding of one measurement record as stored on chain.
pub type RecordBytes = Vec<u8>;

/// Header of a block: everything needed to verify chain linkage without the
/// record payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Height of the block (genesis is 0).
    pub index: u64,
    /// Hash of the previous block's header ([`Digest::ZERO`] for genesis).
    pub previous: Digest,
    /// Merkle root over the block's records.
    pub records_root: Digest,
    /// Simulated wall-clock time at which the block was sealed, microseconds.
    pub timestamp_us: u64,
    /// Aggregator that sealed the block.
    pub writer: WriterId,
    /// Number of records in the block (redundant but cheap to verify).
    pub record_count: u32,
}

impl BlockHeader {
    /// Hash of this header — the value the next block links to.
    pub fn hash(&self) -> Digest {
        Sha256::digest_parts(&[
            &self.index.to_le_bytes(),
            self.previous.as_ref(),
            self.records_root.as_ref(),
            &self.timestamp_us.to_le_bytes(),
            &self.writer.to_le_bytes(),
            &self.record_count.to_le_bytes(),
        ])
    }
}

/// A sealed block: header plus the record payloads it commits to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    header: BlockHeader,
    records: Vec<RecordBytes>,
}

impl Block {
    /// Seals a new block over `records`.
    pub fn new(
        index: u64,
        previous: Digest,
        writer: WriterId,
        timestamp_us: u64,
        records: Vec<RecordBytes>,
    ) -> Self {
        let header = BlockHeader {
            index,
            previous,
            records_root: merkle_root(&records),
            timestamp_us,
            writer,
            record_count: records.len() as u32,
        };
        Block { header, records }
    }

    /// The genesis block of a chain (no records, zero previous hash).
    pub fn genesis(writer: WriterId, timestamp_us: u64) -> Self {
        Block::new(0, Digest::ZERO, writer, timestamp_us, Vec::new())
    }

    /// The block header.
    pub fn header(&self) -> &BlockHeader {
        &self.header
    }

    /// Hash of the block header.
    pub fn hash(&self) -> Digest {
        self.header.hash()
    }

    /// The committed record payloads.
    pub fn records(&self) -> &[RecordBytes] {
        &self.records
    }

    /// Number of records in the block.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Checks that the header commits to exactly the records stored in the
    /// block (Merkle root and count both match).
    pub fn is_internally_consistent(&self) -> bool {
        self.header.record_count as usize == self.records.len()
            && self.header.records_root == merkle_root(&self.records)
    }

    /// Builds an inclusion proof for the record at `index`.
    pub fn prove_record(&self, index: usize) -> Option<MerkleProof> {
        MerkleProof::build(&self.records, index)
    }

    /// Fault injection for the tamper-detection experiments: overwrites a
    /// stored record **without** updating the header, as an attacker with
    /// storage access (but no ability to recompute the chain) would.
    ///
    /// Returns `false` if the index is out of range.
    pub fn tamper_record_for_experiment(&mut self, index: usize, new_bytes: RecordBytes) -> bool {
        match self.records.get_mut(index) {
            Some(slot) => {
                *slot = new_bytes;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize) -> Vec<RecordBytes> {
        (0..n).map(|i| format!("r{i}").into_bytes()).collect()
    }

    #[test]
    fn genesis_links_to_zero() {
        let g = Block::genesis(1, 42);
        assert_eq!(g.header().index, 0);
        assert_eq!(g.header().previous, Digest::ZERO);
        assert_eq!(g.record_count(), 0);
        assert!(g.is_internally_consistent());
    }

    #[test]
    fn header_hash_changes_with_any_field() {
        let base = Block::new(1, Digest::ZERO, 1, 100, records(3));
        let h = base.hash();
        assert_ne!(Block::new(2, Digest::ZERO, 1, 100, records(3)).hash(), h);
        assert_ne!(Block::new(1, Digest::ZERO, 2, 100, records(3)).hash(), h);
        assert_ne!(Block::new(1, Digest::ZERO, 1, 101, records(3)).hash(), h);
        assert_ne!(Block::new(1, Digest::ZERO, 1, 100, records(4)).hash(), h);
        let other_prev = Sha256::digest(b"other");
        assert_ne!(Block::new(1, other_prev, 1, 100, records(3)).hash(), h);
    }

    #[test]
    fn consistency_detects_tampered_record() {
        let mut b = Block::new(1, Digest::ZERO, 1, 100, records(4));
        assert!(b.is_internally_consistent());
        assert!(b.tamper_record_for_experiment(2, b"forged".to_vec()));
        assert!(!b.is_internally_consistent());
    }

    #[test]
    fn tampering_out_of_range_is_rejected() {
        let mut b = Block::new(1, Digest::ZERO, 1, 100, records(2));
        assert!(!b.tamper_record_for_experiment(5, vec![]));
        assert!(b.is_internally_consistent());
    }

    #[test]
    fn record_proofs_verify_against_header_root() {
        let b = Block::new(3, Digest::ZERO, 7, 500, records(9));
        for i in 0..9 {
            let proof = b.prove_record(i).unwrap();
            assert!(proof.verify(&b.records()[i], &b.header().records_root));
        }
        assert!(b.prove_record(9).is_none());
    }

    #[test]
    fn hash_is_deterministic() {
        let a = Block::new(5, Sha256::digest(b"prev"), 2, 999, records(5));
        let b = Block::new(5, Sha256::digest(b"prev"), 2, 999, records(5));
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a, b);
    }
}
