//! # rtem-chain — tamper-evident storage substrate
//!
//! Part of the `rtem` workspace reproducing *Real-Time Energy Monitoring in
//! IoT-enabled Mobile Devices* (DATE 2020).
//!
//! The paper stores verified consumption data in a permissioned blockchain
//! "used as a hashed data chain without any consensus" (§II-A): the trusted
//! aggregators validate reports against their system-level measurement, then
//! seal them into blocks whose hashes chain together, making storage-level
//! manipulation detectable. This crate implements that storage layer:
//!
//! * [`sha256`] — SHA-256 implemented from scratch (FIPS 180-4 vectors in the
//!   tests) so no external crypto dependency is needed.
//! * [`merkle`] — per-block Merkle commitment and inclusion proofs.
//! * [`block`] — block headers, sealing and fault injection for experiments.
//! * [`chain`] — the permissioned append-only [`HashChain`].
//! * [`ledger`] — the typed [`MeteringLedger`] with
//!   per-device accounts.
//! * [`audit`] — tamper localization ([`audit_chain`]).
//!
//! # Examples
//!
//! ```
//! use rtem_chain::audit::audit_chain;
//! use rtem_chain::ledger::{LedgerEntry, MeteringLedger};
//!
//! let mut ledger = MeteringLedger::new(1, 0);
//! ledger.stage(LedgerEntry {
//!     device_id: 1,
//!     collected_by: 1,
//!     billed_by: 1,
//!     sequence: 0,
//!     interval_start_us: 0,
//!     interval_end_us: 100_000,
//!     charge_uas: 15_000,
//!     backfilled: false,
//! });
//! ledger.commit_block(1, 100_000).unwrap();
//!
//! let report = audit_chain(ledger.chain(), Some(ledger.chain().head_hash()));
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod block;
pub mod chain;
pub mod ledger;
pub mod merkle;
pub mod sha256;

pub use audit::{audit_chain, AuditReport, Finding, FindingKind};
pub use block::{Block, BlockHeader, RecordBytes, WriterId};
pub use chain::{ChainError, HashChain};
pub use ledger::{DeviceAccount, LedgerEntry, MeteringLedger};
pub use merkle::{merkle_root, MerkleProof};
pub use sha256::{Digest, Sha256};
