//! The metering ledger: typed view over the hash chain.
//!
//! The chain stores opaque record bytes; billing and verification need typed
//! access. [`MeteringLedger`] pairs a [`HashChain`] with a typed record
//! format ([`LedgerEntry`]) and maintains per-device running totals so the
//! aggregator can answer "how much has device X consumed" without rescanning
//! the chain.

use crate::block::WriterId;
use crate::chain::{ChainError, HashChain};
use crate::sha256::Digest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One typed consumption entry as committed to the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Device the consumption belongs to.
    pub device_id: u64,
    /// Aggregator that collected the measurement (may differ from the
    /// device's home aggregator while roaming).
    pub collected_by: WriterId,
    /// Home aggregator that bills the device.
    pub billed_by: WriterId,
    /// Device-assigned sequence number of the measurement.
    pub sequence: u64,
    /// Start of the measurement interval (device-local microseconds).
    pub interval_start_us: u64,
    /// End of the measurement interval (device-local microseconds).
    pub interval_end_us: u64,
    /// Charge consumed over the interval, in microamp-seconds.
    pub charge_uas: u64,
    /// Whether the entry was backfilled after a connectivity gap.
    pub backfilled: bool,
}

impl LedgerEntry {
    /// Canonical byte encoding committed to the chain (49 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(49);
        out.extend_from_slice(&self.device_id.to_le_bytes());
        out.extend_from_slice(&self.collected_by.to_le_bytes());
        out.extend_from_slice(&self.billed_by.to_le_bytes());
        out.extend_from_slice(&self.sequence.to_le_bytes());
        out.extend_from_slice(&self.interval_start_us.to_le_bytes());
        out.extend_from_slice(&self.interval_end_us.to_le_bytes());
        out.extend_from_slice(&self.charge_uas.to_le_bytes());
        out.push(u8::from(self.backfilled));
        out
    }

    /// Decodes an entry from its canonical encoding.
    ///
    /// Returns `None` if the buffer has the wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Option<LedgerEntry> {
        if bytes.len() != 49 {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().ok().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().ok().unwrap());
        Some(LedgerEntry {
            device_id: u64_at(0),
            collected_by: u32_at(8),
            billed_by: u32_at(12),
            sequence: u64_at(16),
            interval_start_us: u64_at(24),
            interval_end_us: u64_at(32),
            charge_uas: u64_at(40),
            backfilled: bytes[48] != 0,
        })
    }

    /// Charge in milliamp-seconds.
    pub fn charge_mas(&self) -> f64 {
        self.charge_uas as f64 / 1000.0
    }
}

/// Per-device totals maintained alongside the chain.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceAccount {
    /// Total charge committed for the device, in microamp-seconds.
    pub total_charge_uas: u64,
    /// Number of committed entries.
    pub entries: u64,
    /// Number of committed entries that were backfilled.
    pub backfilled_entries: u64,
    /// Highest sequence number committed.
    pub last_sequence: u64,
}

/// A typed, permissioned metering ledger backed by a [`HashChain`].
///
/// # Examples
///
/// ```
/// use rtem_chain::ledger::{LedgerEntry, MeteringLedger};
///
/// let mut ledger = MeteringLedger::new(1, 0);
/// ledger.stage(LedgerEntry {
///     device_id: 7,
///     collected_by: 1,
///     billed_by: 1,
///     sequence: 0,
///     interval_start_us: 0,
///     interval_end_us: 100_000,
///     charge_uas: 15_000,
///     backfilled: false,
/// });
/// ledger.commit_block(1, 100_000).unwrap();
/// assert_eq!(ledger.account(7).unwrap().entries, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeteringLedger {
    chain: HashChain,
    staged: Vec<LedgerEntry>,
    accounts: BTreeMap<u64, DeviceAccount>,
    /// Per-device charge folded out of evicted blocks, so
    /// [`accounts_match_chain`](Self::accounts_match_chain) stays exact
    /// when the chain no longer holds the full entry history.
    evicted_charge_uas: BTreeMap<u64, u64>,
}

impl MeteringLedger {
    /// Creates a ledger whose genesis is written by `genesis_writer`.
    pub fn new(genesis_writer: WriterId, timestamp_us: u64) -> Self {
        MeteringLedger {
            chain: HashChain::new(genesis_writer, timestamp_us),
            staged: Vec::new(),
            accounts: BTreeMap::new(),
            evicted_charge_uas: BTreeMap::new(),
        }
    }

    /// Grants `writer` permission to commit blocks.
    pub fn register_writer(&mut self, writer: WriterId) {
        self.chain.register_writer(writer);
    }

    /// The underlying hash chain.
    pub fn chain(&self) -> &HashChain {
        &self.chain
    }

    /// Mutable access to the chain, for the tamper-injection experiments.
    pub fn chain_mut_for_experiment(&mut self) -> &mut HashChain {
        &mut self.chain
    }

    /// Stages an entry for the next block.
    pub fn stage(&mut self, entry: LedgerEntry) {
        self.staged.push(entry);
    }

    /// Number of entries staged and not yet committed.
    pub fn staged_count(&self) -> usize {
        self.staged.len()
    }

    /// The entries staged for the next block, in staging order. Billing
    /// reconciliation needs them: records billed after the last sealed
    /// window are staged but not yet committed.
    pub fn staged_entries(&self) -> &[LedgerEntry] {
        &self.staged
    }

    /// Commits all staged entries as one block sealed by `writer`.
    ///
    /// Committing with nothing staged is allowed and produces an empty block
    /// (the aggregator's periodic heartbeat).
    ///
    /// # Errors
    ///
    /// Fails if the writer is not permissioned or time went backwards; the
    /// staged entries are kept so the caller can retry.
    pub fn commit_block(
        &mut self,
        writer: WriterId,
        timestamp_us: u64,
    ) -> Result<Digest, ChainError> {
        let records: Vec<Vec<u8>> = self.staged.iter().map(LedgerEntry::to_bytes).collect();
        let hash = self.chain.seal_block(writer, timestamp_us, records)?;
        for entry in self.staged.drain(..) {
            let account = self.accounts.entry(entry.device_id).or_default();
            account.total_charge_uas += entry.charge_uas;
            account.entries += 1;
            if entry.backfilled {
                account.backfilled_entries += 1;
            }
            account.last_sequence = account.last_sequence.max(entry.sequence);
        }
        Ok(hash)
    }

    /// The running account for `device_id`, if it has committed entries.
    pub fn account(&self, device_id: u64) -> Option<&DeviceAccount> {
        self.accounts.get(&device_id)
    }

    /// Iterates over all device accounts.
    pub fn accounts(&self) -> impl Iterator<Item = (u64, &DeviceAccount)> {
        self.accounts.iter().map(|(id, acc)| (*id, acc))
    }

    /// Total charge committed across all devices, in microamp-seconds.
    pub fn total_charge_uas(&self) -> u64 {
        self.accounts.values().map(|a| a.total_charge_uas).sum()
    }

    /// Decodes and returns every resident committed entry, in commit order
    /// (all entries unless a prefix was evicted). Intended for audits and
    /// offline analysis, not the hot path.
    pub fn all_entries(&self) -> Vec<LedgerEntry> {
        self.chain
            .iter()
            .flat_map(|b| b.records().iter())
            .filter_map(|r| LedgerEntry::from_bytes(r))
            .collect()
    }

    /// Evicts every committed block sealed strictly before `timestamp_us`
    /// (always retaining the chain head), folding the evicted entries into
    /// the per-device eviction totals so
    /// [`accounts_match_chain`](Self::accounts_match_chain) stays exact.
    /// Each evicted entry is handed to `on_evict` in commit order before its
    /// storage is dropped, so callers can fold their own sealed summaries
    /// (e.g. per-window accuracy accumulators) in exactly the order a
    /// full-history scan would have visited them.
    pub fn evict_before(&mut self, timestamp_us: u64, mut on_evict: impl FnMut(&LedgerEntry)) {
        for block in self.chain.evict_before(timestamp_us) {
            for record in block.records() {
                let Some(entry) = LedgerEntry::from_bytes(record) else {
                    continue;
                };
                *self.evicted_charge_uas.entry(entry.device_id).or_default() += entry.charge_uas;
                on_evict(&entry);
            }
        }
    }

    /// Recomputes per-device totals from the resident chain (on top of the
    /// sealed eviction totals) and compares them with the maintained
    /// accounts; returns `true` when they agree. A mismatch means the chain
    /// or the account cache was corrupted.
    pub fn accounts_match_chain(&self) -> bool {
        let mut recomputed: BTreeMap<u64, u64> = self.evicted_charge_uas.clone();
        for entry in self.all_entries() {
            *recomputed.entry(entry.device_id).or_default() += entry.charge_uas;
        }
        if recomputed.len() != self.accounts.len() {
            return false;
        }
        recomputed.iter().all(|(id, total)| {
            self.accounts
                .get(id)
                .is_some_and(|acc| acc.total_charge_uas == *total)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(device: u64, seq: u64, charge: u64) -> LedgerEntry {
        LedgerEntry {
            device_id: device,
            collected_by: 1,
            billed_by: 1,
            sequence: seq,
            interval_start_us: seq * 100_000,
            interval_end_us: (seq + 1) * 100_000,
            charge_uas: charge,
            backfilled: seq % 3 == 0,
        }
    }

    #[test]
    fn entry_round_trip() {
        let e = entry(42, 7, 123_456);
        let bytes = e.to_bytes();
        assert_eq!(bytes.len(), 49);
        assert_eq!(LedgerEntry::from_bytes(&bytes), Some(e));
        assert!(LedgerEntry::from_bytes(&bytes[..40]).is_none());
        assert!((e.charge_mas() - 123.456).abs() < 1e-9);
    }

    #[test]
    fn commit_updates_accounts() {
        let mut ledger = MeteringLedger::new(1, 0);
        ledger.stage(entry(1, 0, 100));
        ledger.stage(entry(1, 1, 200));
        ledger.stage(entry(2, 0, 50));
        assert_eq!(ledger.staged_count(), 3);
        ledger.commit_block(1, 1_000).unwrap();
        assert_eq!(ledger.staged_count(), 0);
        let acc1 = ledger.account(1).unwrap();
        assert_eq!(acc1.total_charge_uas, 300);
        assert_eq!(acc1.entries, 2);
        assert_eq!(acc1.last_sequence, 1);
        assert_eq!(ledger.account(2).unwrap().total_charge_uas, 50);
        assert!(ledger.account(3).is_none());
        assert_eq!(ledger.total_charge_uas(), 350);
    }

    #[test]
    fn backfilled_entries_are_counted() {
        let mut ledger = MeteringLedger::new(1, 0);
        ledger.stage(entry(1, 0, 10)); // seq 0 -> backfilled
        ledger.stage(entry(1, 1, 10));
        ledger.stage(entry(1, 3, 10)); // seq 3 -> backfilled
        ledger.commit_block(1, 10).unwrap();
        assert_eq!(ledger.account(1).unwrap().backfilled_entries, 2);
    }

    #[test]
    fn unauthorized_commit_keeps_staged_entries() {
        let mut ledger = MeteringLedger::new(1, 0);
        ledger.stage(entry(1, 0, 10));
        assert!(ledger.commit_block(99, 10).is_err());
        assert_eq!(ledger.staged_count(), 1);
        ledger.register_writer(99);
        assert!(ledger.commit_block(99, 10).is_ok());
        assert_eq!(ledger.staged_count(), 0);
    }

    #[test]
    fn all_entries_reflect_commits_in_order() {
        let mut ledger = MeteringLedger::new(1, 0);
        ledger.stage(entry(1, 0, 10));
        ledger.commit_block(1, 100).unwrap();
        ledger.stage(entry(2, 0, 20));
        ledger.stage(entry(1, 1, 30));
        ledger.commit_block(1, 200).unwrap();
        let all = ledger.all_entries();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].device_id, 1);
        assert_eq!(all[1].device_id, 2);
        assert_eq!(all[2].sequence, 1);
    }

    #[test]
    fn accounts_match_chain_detects_tampering() {
        let mut ledger = MeteringLedger::new(1, 0);
        for i in 0..5 {
            ledger.stage(entry(1, i, 100));
        }
        ledger.commit_block(1, 100).unwrap();
        assert!(ledger.accounts_match_chain());
        // An attacker rewrites a stored record to claim less consumption.
        let mut forged = entry(1, 2, 1);
        forged.charge_uas = 1;
        ledger
            .chain_mut_for_experiment()
            .block_mut_for_experiment(1)
            .unwrap()
            .tamper_record_for_experiment(2, forged.to_bytes());
        assert!(!ledger.accounts_match_chain());
        // And the chain itself no longer verifies.
        assert!(ledger.chain().verify().is_err());
    }

    #[test]
    fn eviction_keeps_accounts_matching_the_chain() {
        let mut ledger = MeteringLedger::new(1, 0);
        ledger.stage(entry(1, 0, 100));
        ledger.stage(entry(2, 0, 40));
        ledger.commit_block(1, 1_000).unwrap();
        ledger.stage(entry(1, 1, 200));
        ledger.commit_block(1, 2_000).unwrap();
        ledger.stage(entry(2, 1, 60));
        ledger.commit_block(1, 3_000).unwrap();

        let mut evicted = Vec::new();
        ledger.evict_before(2_500, |e| evicted.push((e.device_id, e.charge_uas)));
        // Genesis (empty) + the first two record blocks are gone.
        assert_eq!(ledger.chain().retained_len(), 1);
        assert_eq!(evicted, vec![(1, 100), (2, 40), (1, 200)]);
        // Full-history counters and account reconciliation survive.
        assert_eq!(ledger.chain().len(), 4);
        assert_eq!(ledger.chain().total_records(), 4);
        assert_eq!(ledger.account(1).unwrap().total_charge_uas, 300);
        assert!(ledger.accounts_match_chain());
        assert!(ledger.chain().verify().is_ok());

        // The ledger keeps working after eviction.
        ledger.stage(entry(1, 2, 50));
        ledger.commit_block(1, 4_000).unwrap();
        assert_eq!(ledger.account(1).unwrap().total_charge_uas, 350);
        assert!(ledger.accounts_match_chain());
    }

    #[test]
    fn tampering_after_eviction_is_still_detected() {
        let mut ledger = MeteringLedger::new(1, 0);
        for i in 0..4 {
            ledger.stage(entry(1, i, 100));
            ledger.commit_block(1, (i + 1) * 1_000).unwrap();
        }
        ledger.evict_before(2_500, |_| {});
        let mut forged = entry(1, 3, 1);
        forged.charge_uas = 1;
        ledger
            .chain_mut_for_experiment()
            .block_mut_for_experiment(4)
            .unwrap()
            .tamper_record_for_experiment(0, forged.to_bytes());
        assert!(!ledger.accounts_match_chain());
        assert!(ledger.chain().verify().is_err());
    }

    #[test]
    fn empty_commit_produces_heartbeat_block() {
        let mut ledger = MeteringLedger::new(1, 0);
        let before = ledger.chain().len();
        ledger.commit_block(1, 50).unwrap();
        assert_eq!(ledger.chain().len(), before + 1);
        assert!(ledger.accounts_match_chain());
    }
}
