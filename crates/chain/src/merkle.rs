//! Merkle digest over the records inside one block.
//!
//! The paper only requires that "the reported data and a hash are
//! encapsulated" per block. Hashing the records as a Merkle tree (instead of
//! a flat concatenation) additionally lets an auditor prove that a single
//! record belongs to a block without shipping the whole block — useful for
//! per-device billing disputes — at no extra storage cost.

use crate::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};

const LEAF_PREFIX: &[u8] = b"\x00rtem-leaf";
const NODE_PREFIX: &[u8] = b"\x01rtem-node";

/// Hashes one leaf (a canonical record encoding).
pub fn leaf_hash(data: &[u8]) -> Digest {
    Sha256::digest_parts(&[LEAF_PREFIX, data])
}

/// Hashes an interior node from its two children.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    Sha256::digest_parts(&[NODE_PREFIX, left.as_ref(), right.as_ref()])
}

/// Computes the Merkle root of a list of leaves (already-encoded records).
///
/// The empty list hashes to [`Digest::ZERO`]; an odd node at any level is
/// promoted unchanged (Bitcoin-style duplication is avoided so a proof cannot
/// be ambiguous).
pub fn merkle_root(leaves: &[Vec<u8>]) -> Digest {
    if leaves.is_empty() {
        return Digest::ZERO;
    }
    let mut level: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l)).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(node_hash(&pair[0], &pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// One step of a Merkle inclusion proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProofStep {
    /// The sibling digest at this level.
    pub sibling: Digest,
    /// Whether the sibling is on the right of the running hash.
    pub sibling_on_right: bool,
}

/// A Merkle inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Index of the proven leaf in the original list.
    pub leaf_index: usize,
    /// Path from the leaf to the root.
    pub steps: Vec<ProofStep>,
}

impl MerkleProof {
    /// Builds a proof for `leaf_index` over `leaves`.
    ///
    /// Returns `None` if the index is out of range.
    pub fn build(leaves: &[Vec<u8>], leaf_index: usize) -> Option<MerkleProof> {
        if leaf_index >= leaves.len() {
            return None;
        }
        let mut steps = Vec::new();
        let mut level: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l)).collect();
        let mut index = leaf_index;
        while level.len() > 1 {
            let sibling_index = if index % 2 == 0 { index + 1 } else { index - 1 };
            if sibling_index < level.len() {
                steps.push(ProofStep {
                    sibling: level[sibling_index],
                    sibling_on_right: sibling_index > index,
                });
            }
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(node_hash(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            index /= 2;
            level = next;
        }
        Some(MerkleProof { leaf_index, steps })
    }

    /// Verifies that `leaf_data` is included under `root`.
    pub fn verify(&self, leaf_data: &[u8], root: &Digest) -> bool {
        let mut hash = leaf_hash(leaf_data);
        for step in &self.steps {
            hash = if step.sibling_on_right {
                node_hash(&hash, &step.sibling)
            } else {
                node_hash(&step.sibling, &hash)
            };
        }
        hash == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("record-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_is_zero() {
        assert_eq!(merkle_root(&[]), Digest::ZERO);
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let l = leaves(1);
        assert_eq!(merkle_root(&l), leaf_hash(&l[0]));
    }

    #[test]
    fn root_changes_when_any_leaf_changes() {
        let original = leaves(8);
        let base = merkle_root(&original);
        for i in 0..original.len() {
            let mut tampered = original.clone();
            tampered[i] = b"tampered".to_vec();
            assert_ne!(merkle_root(&tampered), base, "leaf {i}");
        }
    }

    #[test]
    fn root_depends_on_leaf_order() {
        let mut l = leaves(4);
        let a = merkle_root(&l);
        l.swap(0, 3);
        assert_ne!(merkle_root(&l), a);
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A leaf containing what looks like two concatenated digests must not
        // collide with an interior node.
        let a = leaf_hash(b"x");
        let b = leaf_hash(b"y");
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_ref());
        concat.extend_from_slice(b.as_ref());
        assert_ne!(leaf_hash(&concat), node_hash(&a, &b));
    }

    #[test]
    fn proofs_verify_for_all_leaves_and_sizes() {
        for n in 1..=12usize {
            let l = leaves(n);
            let root = merkle_root(&l);
            for i in 0..n {
                let proof = MerkleProof::build(&l, i).unwrap();
                assert!(proof.verify(&l[i], &root), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf_or_root() {
        let l = leaves(7);
        let root = merkle_root(&l);
        let proof = MerkleProof::build(&l, 3).unwrap();
        assert!(!proof.verify(b"not the leaf", &root));
        let other_root = merkle_root(&leaves(6));
        assert!(!proof.verify(&l[3], &other_root));
    }

    #[test]
    fn proof_for_out_of_range_index_is_none() {
        assert!(MerkleProof::build(&leaves(3), 3).is_none());
    }
}
