//! Tamper auditing.
//!
//! The point of encapsulating consumption data in a hash chain is that
//! storage-level manipulation is detectable (§II-A: "By encapsulating the
//! consumption data into a blockchain, data storage is made tamper-proof").
//! This module provides the auditor's side: walk a chain (optionally anchored
//! to an externally published head digest), localize every inconsistency and
//! classify it.

use crate::chain::HashChain;
use crate::sha256::Digest;
use serde::{Deserialize, Serialize};

/// Classification of a single audit finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FindingKind {
    /// A block's stored records no longer match its header commitment
    /// (a record was rewritten in place).
    RecordMismatch,
    /// A block's `previous` digest does not match its predecessor (a whole
    /// block was replaced or re-sealed).
    LinkBroken,
    /// Block indices are not contiguous (a block was inserted or removed).
    IndexGap,
    /// A block's timestamp is older than its predecessor's.
    TimeRegression,
    /// The chain head does not match the externally published anchor.
    AnchorMismatch,
}

/// One localized audit finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Height of the offending block.
    pub block_index: u64,
    /// What kind of inconsistency was found.
    pub kind: FindingKind,
    /// Sealing timestamp of the offending block, in simulated microseconds.
    /// Lets an investigator (and the fault-injection resilience accounting)
    /// place the finding on the run's timeline and compute detection
    /// latency without re-walking the chain.
    pub timestamp_us: u64,
}

/// The result of auditing a chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Number of blocks examined.
    pub blocks_examined: usize,
    /// Number of records examined.
    pub records_examined: usize,
    /// All findings, in block order.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// `true` when no inconsistency was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Height of the first inconsistent block, if any.
    pub fn first_bad_block(&self) -> Option<u64> {
        self.findings.first().map(|f| f.block_index)
    }

    /// Number of findings of a given kind.
    pub fn count_of(&self, kind: FindingKind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }
}

/// Audits a chain, optionally against an externally published head digest
/// (`anchor`). Unlike [`HashChain::verify`], which stops at the first error,
/// the audit continues and localizes every inconsistency, which is what an
/// operator investigating a tampering incident needs.
///
/// When the chain evicted a sealed prefix (streaming compaction), the audit
/// walks the retained suffix and checks the first retained block's linkage
/// against the sealed [`EvictedPrefix`](crate::chain::EvictedPrefix)
/// summary, exactly as a verifier holding the published prefix digest would.
pub fn audit_chain(chain: &HashChain, anchor: Option<Digest>) -> AuditReport {
    let mut findings = Vec::new();
    let mut records = 0usize;
    // Linkage baseline for the oldest examined block: the sealed eviction
    // summary when a prefix was evicted, nothing for a full chain (genesis
    // has no predecessor).
    let first = chain.first_retained_index();
    let mut previous: Option<(Digest, u64)> =
        chain.evicted().map(|e| (e.last_hash, e.last_timestamp_us));

    for (i, block) in chain.iter().enumerate() {
        let height = first + i as u64;
        records += block.record_count();
        let timestamp_us = block.header().timestamp_us;
        if block.header().index != height {
            findings.push(Finding {
                block_index: height,
                kind: FindingKind::IndexGap,
                timestamp_us,
            });
        }
        if !block.is_internally_consistent() {
            findings.push(Finding {
                block_index: height,
                kind: FindingKind::RecordMismatch,
                timestamp_us,
            });
        }
        if let Some((prev_hash, prev_time)) = previous {
            if block.header().previous != prev_hash {
                findings.push(Finding {
                    block_index: height,
                    kind: FindingKind::LinkBroken,
                    timestamp_us,
                });
            }
            if block.header().timestamp_us < prev_time {
                findings.push(Finding {
                    block_index: height,
                    kind: FindingKind::TimeRegression,
                    timestamp_us,
                });
            }
        }
        previous = Some((block.hash(), block.header().timestamp_us));
    }

    if let Some(anchor) = anchor {
        if chain.head_hash() != anchor {
            findings.push(Finding {
                block_index: chain.head().header().index,
                kind: FindingKind::AnchorMismatch,
                timestamp_us: chain.head().header().timestamp_us,
            });
        }
    }

    AuditReport {
        blocks_examined: chain.retained_len(),
        records_examined: records,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    fn chain_with_blocks(n: usize) -> HashChain {
        let mut chain = HashChain::new(1, 0);
        for i in 0..n {
            let records = (0..4).map(|j| format!("b{i}-r{j}").into_bytes()).collect();
            chain.seal_block(1, (i as u64 + 1) * 1000, records).unwrap();
        }
        chain
    }

    #[test]
    fn clean_chain_audits_clean() {
        let chain = chain_with_blocks(5);
        let report = audit_chain(&chain, Some(chain.head_hash()));
        assert!(report.is_clean());
        assert_eq!(report.blocks_examined, 6);
        assert_eq!(report.records_examined, 20);
        assert_eq!(report.first_bad_block(), None);
    }

    #[test]
    fn record_tampering_is_localized() {
        let mut chain = chain_with_blocks(5);
        chain
            .block_mut_for_experiment(3)
            .unwrap()
            .tamper_record_for_experiment(2, b"fraud".to_vec());
        let report = audit_chain(&chain, None);
        assert!(!report.is_clean());
        assert_eq!(report.first_bad_block(), Some(3));
        assert_eq!(report.count_of(FindingKind::RecordMismatch), 1);
        assert_eq!(report.count_of(FindingKind::LinkBroken), 0);
        // The finding carries the sealing time of the offending block, so
        // detection latency is computable from the report alone.
        assert_eq!(report.findings[0].timestamp_us, 3_000);
    }

    #[test]
    fn multiple_tampered_blocks_all_reported() {
        let mut chain = chain_with_blocks(6);
        for idx in [1u64, 4, 5] {
            chain
                .block_mut_for_experiment(idx)
                .unwrap()
                .tamper_record_for_experiment(0, b"x".to_vec());
        }
        let report = audit_chain(&chain, None);
        assert_eq!(report.count_of(FindingKind::RecordMismatch), 3);
        let blocks: Vec<u64> = report.findings.iter().map(|f| f.block_index).collect();
        assert_eq!(blocks, vec![1, 4, 5]);
    }

    #[test]
    fn resealed_block_breaks_the_link() {
        let mut chain = chain_with_blocks(4);
        // The attacker re-seals block 2 entirely (consistent on its own) but
        // cannot update block 3's previous pointer.
        let forged = Block::new(
            2,
            chain.block(1).unwrap().hash(),
            1,
            2_000,
            vec![b"forged".to_vec()],
        );
        *chain.block_mut_for_experiment(2).unwrap() = forged;
        let report = audit_chain(&chain, None);
        assert!(!report.is_clean());
        assert_eq!(report.count_of(FindingKind::LinkBroken), 1);
        assert_eq!(
            report
                .findings
                .iter()
                .find(|f| f.kind == FindingKind::LinkBroken)
                .unwrap()
                .block_index,
            3
        );
    }

    #[test]
    fn truncation_is_caught_by_the_anchor() {
        let full = chain_with_blocks(5);
        let anchor = full.head_hash();
        // The attacker presents a shorter (but internally valid) chain.
        let truncated = chain_with_blocks(3);
        assert!(truncated.verify().is_ok());
        let report = audit_chain(&truncated, Some(anchor));
        assert!(!report.is_clean());
        assert_eq!(report.count_of(FindingKind::AnchorMismatch), 1);
    }

    #[test]
    fn evicted_chain_audits_clean_and_localizes_suffix_tampering() {
        let mut chain = chain_with_blocks(6);
        let anchor = chain.head_hash();
        chain.evict_before(4_000); // genesis + blocks 1..=3 evicted
        let report = audit_chain(&chain, Some(anchor));
        assert!(report.is_clean());
        assert_eq!(report.blocks_examined, 3);
        assert_eq!(report.records_examined, 12);

        chain
            .block_mut_for_experiment(5)
            .unwrap()
            .tamper_record_for_experiment(1, b"fraud".to_vec());
        let report = audit_chain(&chain, Some(anchor));
        assert_eq!(report.first_bad_block(), Some(5));
        assert_eq!(report.count_of(FindingKind::RecordMismatch), 1);
    }

    #[test]
    fn evicted_prefix_anchors_the_first_retained_block() {
        let mut chain = chain_with_blocks(4);
        // Evict genesis + blocks 1..=2, then re-seal the first retained
        // block; it can no longer link to the sealed prefix summary.
        chain.evict_before(3_000);
        let forged = Block::new(
            3,
            crate::sha256::Digest::ZERO,
            1,
            3_000,
            vec![b"x".to_vec()],
        );
        *chain.block_mut_for_experiment(3).unwrap() = forged;
        let report = audit_chain(&chain, None);
        // Both the summary link (at the forged block) and the forged block's
        // successor link break.
        assert_eq!(report.count_of(FindingKind::LinkBroken), 2);
        assert_eq!(report.first_bad_block(), Some(3));
    }

    #[test]
    fn audit_without_anchor_accepts_truncation() {
        // Documents why publishing the head digest matters: without the
        // anchor a truncated chain looks clean.
        let truncated = chain_with_blocks(3);
        let report = audit_chain(&truncated, None);
        assert!(report.is_clean());
    }
}
