//! The fleet-command vocabulary and its wire encoding.
//!
//! Commands travel as compact binary payloads on per-device MQTT command
//! topics (the same fixed-width little-endian style as the metering
//! protocol in `rtem_net::packet`, parseable by a microcontroller-class
//! device), and devices answer with a [`CommandAck`] on their status topic.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtem_codecs::MeterKind;
use rtem_net::packet::DeviceId;
use rtem_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// MQTT topic a device listens on for fleet commands.
pub fn command_topic(device: DeviceId) -> String {
    format!("metering/dev-{}/command", device.0)
}

/// MQTT topic a device publishes its [`CommandAck`]s on.
pub fn status_topic(device: DeviceId) -> String {
    format!("metering/dev-{}/status", device.0)
}

/// A two-rate tariff hint pushed to the device-local billing estimator —
/// the firmware-sized approximation of the operator's schedule, not the
/// aggregator's authoritative tariff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TariffHint {
    /// Price per mWh during the daily peak window.
    pub peak_price_per_mwh: f64,
    /// Price per mWh outside the peak window.
    pub off_peak_price_per_mwh: f64,
    /// Start of the daily peak window, seconds from midnight.
    pub peak_start_s: u64,
    /// End of the daily peak window, seconds from midnight.
    pub peak_end_s: u64,
}

impl TariffHint {
    /// A flat hint (same price at all hours).
    pub fn flat(price_per_mwh: f64) -> TariffHint {
        TariffHint {
            peak_price_per_mwh: price_per_mwh,
            off_peak_price_per_mwh: price_per_mwh,
            peak_start_s: 0,
            peak_end_s: 0,
        }
    }

    /// `true` when prices are finite and non-negative and the peak window
    /// is well-formed.
    pub fn is_valid(&self) -> bool {
        self.peak_price_per_mwh.is_finite()
            && self.peak_price_per_mwh >= 0.0
            && self.off_peak_price_per_mwh.is_finite()
            && self.off_peak_price_per_mwh >= 0.0
            && self.peak_start_s <= self.peak_end_s
            && self.peak_end_s <= 86_400
    }
}

/// One remote-management command an operator can address to the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FleetCommand {
    /// Change the reporting interval Tmeasure.
    SetMeasureInterval {
        /// The new measurement interval.
        interval: SimDuration,
    },
    /// Update the device-local billing estimator's tariff approximation.
    SetTariffHint(TariffHint),
    /// Switch the meter protocol the device frames its reports in — the
    /// simulated equivalent of a baud-rate/protocol reconfiguration.
    SetMeterKind {
        /// The protocol family to switch to.
        kind: MeterKind,
    },
    /// Resume publishing consumption reports (buffered records backfill).
    StartReporting,
    /// Stop publishing consumption reports; measurements keep accumulating
    /// in the local store for later backfill.
    StopReporting,
    /// Configure crash-recovery behavior of the local store.
    CrashRecoveryConfig {
        /// When `true`, the record buffer survives a firmware crash
        /// (battery-backed store); when `false`, a crash clears it.
        persist_store: bool,
    },
}

impl FleetCommand {
    /// Short stable label for bench CSV/JSON columns and report keys.
    pub fn label(&self) -> &'static str {
        match self {
            FleetCommand::SetMeasureInterval { .. } => "set_measure_interval",
            FleetCommand::SetTariffHint(_) => "set_tariff_hint",
            FleetCommand::SetMeterKind { .. } => "set_meter_kind",
            FleetCommand::StartReporting => "start_reporting",
            FleetCommand::StopReporting => "stop_reporting",
            FleetCommand::CrashRecoveryConfig { .. } => "crash_recovery_config",
        }
    }
}

/// Error returned when a command or ack payload cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlDecodeError {
    /// The buffer ended before the frame was complete.
    Truncated {
        /// How many bytes were needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// The command tag byte does not correspond to a known command.
    UnknownTag(u8),
    /// A meter-kind code is outside the known protocol families.
    UnknownMeterKind(u8),
}

impl fmt::Display for ControlDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlDecodeError::Truncated { needed, available } => {
                write!(
                    f,
                    "control frame truncated: needed {needed} bytes, had {available}"
                )
            }
            ControlDecodeError::UnknownTag(tag) => {
                write!(f, "unknown control frame tag {tag:#04x}")
            }
            ControlDecodeError::UnknownMeterKind(code) => {
                write!(f, "unknown meter kind code {code:#04x}")
            }
        }
    }
}

impl Error for ControlDecodeError {}

const TAG_SET_MEASURE_INTERVAL: u8 = 0x01;
const TAG_SET_TARIFF_HINT: u8 = 0x02;
const TAG_SET_METER_KIND: u8 = 0x03;
const TAG_START_REPORTING: u8 = 0x04;
const TAG_STOP_REPORTING: u8 = 0x05;
const TAG_CRASH_RECOVERY: u8 = 0x06;
const TAG_ACK: u8 = 0x41;

/// A command as carried on the wire: the plan-assigned sequence number
/// (echoed back in the [`CommandAck`]) plus the command itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommandFrame {
    /// Sequence number of the originating [`ControlEvent`]
    /// (its index in the plan), echoed by device acks.
    ///
    /// [`ControlEvent`]: crate::plan::ControlEvent
    pub seq: u32,
    /// The command to apply.
    pub command: FleetCommand,
}

impl CommandFrame {
    /// Encodes the frame into its canonical wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u32_le(self.seq);
        match self.command {
            FleetCommand::SetMeasureInterval { interval } => {
                buf.put_u8(TAG_SET_MEASURE_INTERVAL);
                buf.put_u64_le(interval.as_micros());
            }
            FleetCommand::SetTariffHint(hint) => {
                buf.put_u8(TAG_SET_TARIFF_HINT);
                buf.put_u64_le(hint.peak_price_per_mwh.to_bits());
                buf.put_u64_le(hint.off_peak_price_per_mwh.to_bits());
                buf.put_u64_le(hint.peak_start_s);
                buf.put_u64_le(hint.peak_end_s);
            }
            FleetCommand::SetMeterKind { kind } => {
                buf.put_u8(TAG_SET_METER_KIND);
                buf.put_u8(kind.code());
            }
            FleetCommand::StartReporting => buf.put_u8(TAG_START_REPORTING),
            FleetCommand::StopReporting => buf.put_u8(TAG_STOP_REPORTING),
            FleetCommand::CrashRecoveryConfig { persist_store } => {
                buf.put_u8(TAG_CRASH_RECOVERY);
                buf.put_u8(u8::from(persist_store));
            }
        }
        buf.freeze()
    }

    /// Decodes a frame from its wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`ControlDecodeError`] on truncation or unknown tags.
    pub fn decode(bytes: &Bytes) -> Result<CommandFrame, ControlDecodeError> {
        let mut buf = bytes.clone();
        let need = |n: usize, buf: &Bytes| {
            if buf.remaining() < n {
                Err(ControlDecodeError::Truncated {
                    needed: n,
                    available: buf.remaining(),
                })
            } else {
                Ok(())
            }
        };
        need(5, &buf)?;
        let seq = buf.get_u32_le();
        let tag = buf.get_u8();
        let command = match tag {
            TAG_SET_MEASURE_INTERVAL => {
                need(8, &buf)?;
                FleetCommand::SetMeasureInterval {
                    interval: SimDuration::from_micros(buf.get_u64_le()),
                }
            }
            TAG_SET_TARIFF_HINT => {
                need(32, &buf)?;
                FleetCommand::SetTariffHint(TariffHint {
                    peak_price_per_mwh: f64::from_bits(buf.get_u64_le()),
                    off_peak_price_per_mwh: f64::from_bits(buf.get_u64_le()),
                    peak_start_s: buf.get_u64_le(),
                    peak_end_s: buf.get_u64_le(),
                })
            }
            TAG_SET_METER_KIND => {
                need(1, &buf)?;
                let code = buf.get_u8();
                FleetCommand::SetMeterKind {
                    kind: MeterKind::from_code(code)
                        .ok_or(ControlDecodeError::UnknownMeterKind(code))?,
                }
            }
            TAG_START_REPORTING => FleetCommand::StartReporting,
            TAG_STOP_REPORTING => FleetCommand::StopReporting,
            TAG_CRASH_RECOVERY => {
                need(1, &buf)?;
                FleetCommand::CrashRecoveryConfig {
                    persist_store: buf.get_u8() != 0,
                }
            }
            other => return Err(ControlDecodeError::UnknownTag(other)),
        };
        Ok(CommandFrame { seq, command })
    }
}

/// A device's acknowledgment of one command, published on its status topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandAck {
    /// Acknowledging device.
    pub device: DeviceId,
    /// Sequence number of the acknowledged [`CommandFrame`].
    pub seq: u32,
    /// Whether the device applied the command (`false`: rejected, e.g. an
    /// interval of zero).
    pub applied: bool,
}

impl CommandAck {
    /// Encodes the ack into its canonical wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(14);
        buf.put_u8(TAG_ACK);
        buf.put_u64_le(self.device.0);
        buf.put_u32_le(self.seq);
        buf.put_u8(u8::from(self.applied));
        buf.freeze()
    }

    /// Decodes an ack from its wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`ControlDecodeError`] on truncation or a wrong tag.
    pub fn decode(bytes: &Bytes) -> Result<CommandAck, ControlDecodeError> {
        let mut buf = bytes.clone();
        if buf.remaining() < 14 {
            return Err(ControlDecodeError::Truncated {
                needed: 14,
                available: buf.remaining(),
            });
        }
        let tag = buf.get_u8();
        if tag != TAG_ACK {
            return Err(ControlDecodeError::UnknownTag(tag));
        }
        Ok(CommandAck {
            device: DeviceId(buf.get_u64_le()),
            seq: buf.get_u32_le(),
            applied: buf.get_u8() != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_commands() -> Vec<FleetCommand> {
        vec![
            FleetCommand::SetMeasureInterval {
                interval: SimDuration::from_millis(250),
            },
            FleetCommand::SetTariffHint(TariffHint {
                peak_price_per_mwh: 0.0004,
                off_peak_price_per_mwh: 0.0001,
                peak_start_s: 17 * 3600,
                peak_end_s: 21 * 3600,
            }),
            FleetCommand::SetMeterKind {
                kind: MeterKind::Sml,
            },
            FleetCommand::StartReporting,
            FleetCommand::StopReporting,
            FleetCommand::CrashRecoveryConfig {
                persist_store: true,
            },
        ]
    }

    #[test]
    fn command_frames_round_trip() {
        for (seq, command) in all_commands().into_iter().enumerate() {
            let frame = CommandFrame {
                seq: seq as u32,
                command,
            };
            let decoded = CommandFrame::decode(&frame.encode()).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn acks_round_trip() {
        for applied in [true, false] {
            let ack = CommandAck {
                device: DeviceId(u64::MAX),
                seq: 7,
                applied,
            };
            assert_eq!(CommandAck::decode(&ack.encode()).unwrap(), ack);
        }
    }

    #[test]
    fn truncated_and_garbage_frames_are_typed_errors() {
        let frame = CommandFrame {
            seq: 3,
            command: FleetCommand::SetTariffHint(TariffHint::flat(1.0)),
        };
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            let prefix = Bytes::from(bytes[..cut].to_vec());
            assert!(matches!(
                CommandFrame::decode(&prefix),
                Err(ControlDecodeError::Truncated { .. })
            ));
        }
        let garbage = Bytes::from(vec![0, 0, 0, 0, 0xEE]);
        assert_eq!(
            CommandFrame::decode(&garbage),
            Err(ControlDecodeError::UnknownTag(0xEE))
        );
        let bad_kind = Bytes::from(vec![0, 0, 0, 0, TAG_SET_METER_KIND, 0x77]);
        assert_eq!(
            CommandFrame::decode(&bad_kind),
            Err(ControlDecodeError::UnknownMeterKind(0x77))
        );
        assert!(CommandAck::decode(&garbage).is_err());
    }

    #[test]
    fn topics_are_per_device_and_valid() {
        assert_eq!(command_topic(DeviceId(3)), "metering/dev-3/command");
        assert_eq!(status_topic(DeviceId(3)), "metering/dev-3/status");
        assert_ne!(command_topic(DeviceId(1)), command_topic(DeviceId(2)));
    }

    #[test]
    fn tariff_hint_validity() {
        assert!(TariffHint::flat(0.5).is_valid());
        assert!(!TariffHint::flat(-0.5).is_valid());
        assert!(!TariffHint::flat(f64::NAN).is_valid());
        let inverted = TariffHint {
            peak_start_s: 10,
            peak_end_s: 5,
            ..TariffHint::flat(1.0)
        };
        assert!(!inverted.is_valid());
    }
}
