//! Scriptable MQTT control plane for the metering fleet.
//!
//! This crate is purely *descriptive*: it knows what a fleet command is —
//! its wire encoding, its per-device topics, which subset of the fleet it
//! addresses and when — but not how a device applies one or how the world
//! routes it. `rtem-core` interprets a [`ControlPlan`] by publishing each
//! event's [`CommandFrame`] on the targeted devices' command topics through
//! the simulated MQTT broker, and devices answer with a [`CommandAck`] on
//! their status topic.
//!
//! The split mirrors `rtem-faults`: scenarios carry a validated plan, the
//! world carries the machinery.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod command;
pub mod plan;

pub use command::{
    command_topic, status_topic, CommandAck, CommandFrame, ControlDecodeError, FleetCommand,
    TariffHint,
};
pub use plan::{CommandTarget, ControlError, ControlEvent, ControlPlan};
