//! The [`ControlPlan`]: a validated timeline of fleet commands.
//!
//! A plan mirrors [`FaultPlan`](https://docs.rs/rtem-faults): a plain list
//! of typed events, builder helpers per command, and up-front validation
//! against the scenario's device/network population and horizon so an
//! impossible plan fails with a typed [`ControlError`] before anything
//! runs.

use crate::command::{FleetCommand, TariffHint};
use core::fmt;
use rtem_codecs::MeterKind;
use rtem_net::broker::QoS;
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Who a control event is addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandTarget {
    /// Every device of the scenario.
    AllDevices,
    /// One device.
    Device(DeviceId),
    /// Every device whose *home* network is the given aggregator.
    Site(AggregatorAddr),
    /// A seeded percentage of the fleet — the staged-rollout target. The
    /// cohort is drawn deterministically from the world seed and the
    /// event's plan index, so the same percentage at two times selects the
    /// same devices only by chance; rising percentages of one rollout are
    /// nested (see [`ControlPlan::staged_rollout`]).
    Cohort {
        /// Fleet percentage in `1..=100`.
        percent: u8,
    },
}

/// One scheduled fleet command: when, to whom, what, and how it travels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlEvent {
    /// When the operator publishes the command.
    pub at: SimTime,
    /// Addressed subset of the fleet.
    pub target: CommandTarget,
    /// The command itself.
    pub command: FleetCommand,
    /// MQTT quality of service the command is published at.
    pub qos: QoS,
    /// Whether the command is published retained, so devices (re)connecting
    /// later still receive it.
    pub retain: bool,
}

/// Why a [`ControlPlan`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControlError {
    /// An event targets a device the scenario does not generate.
    UnknownDevice {
        /// The offending device id.
        device: DeviceId,
    },
    /// An event targets a network the scenario does not generate.
    UnknownNetwork {
        /// The offending network address.
        network: AggregatorAddr,
    },
    /// An event is scheduled after the run horizon and would never fire.
    AfterHorizon {
        /// The scheduled publish time.
        at: SimTime,
    },
    /// A cohort percentage outside `1..=100` selects nothing (or is
    /// malformed).
    InvalidCohort {
        /// The offending percentage.
        percent: u8,
    },
    /// A `SetMeasureInterval` command carries a zero interval, which no
    /// device firmware accepts.
    ZeroMeasureInterval {
        /// The scheduled publish time of the offending event.
        at: SimTime,
    },
    /// A tariff hint carries negative or non-finite prices, or an inverted
    /// peak window.
    InvalidTariffHint {
        /// The scheduled publish time of the offending event.
        at: SimTime,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::UnknownDevice { device } => {
                write!(f, "control plan refers to unknown device {device:?}")
            }
            ControlError::UnknownNetwork { network } => {
                write!(f, "control plan refers to unknown network {network:?}")
            }
            ControlError::AfterHorizon { at } => {
                write!(f, "command publish at {at:?} is after the horizon")
            }
            ControlError::InvalidCohort { percent } => {
                write!(f, "cohort percentage {percent} is outside 1..=100")
            }
            ControlError::ZeroMeasureInterval { at } => {
                write!(f, "command at {at:?} sets a zero measurement interval")
            }
            ControlError::InvalidTariffHint { at } => {
                write!(f, "command at {at:?} carries an invalid tariff hint")
            }
        }
    }
}

impl std::error::Error for ControlError {}

/// A declarative timeline of fleet commands.
///
/// ```
/// use rtem_control::plan::{CommandTarget, ControlPlan};
/// use rtem_net::packet::{AggregatorAddr, DeviceId};
/// use rtem_sim::time::{SimDuration, SimTime};
///
/// let plan = ControlPlan::new()
///     .set_measure_interval(
///         SimTime::from_secs(20),
///         CommandTarget::AllDevices,
///         SimDuration::from_millis(500),
///     )
///     .stop_reporting(SimTime::from_secs(40), CommandTarget::Site(AggregatorAddr(1)));
/// assert_eq!(plan.len(), 2);
/// let devices = [DeviceId(1)];
/// let networks = [AggregatorAddr(1)];
/// assert!(plan
///     .validate(&devices, &networks, SimTime::from_secs(100))
///     .is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControlPlan {
    /// The scheduled events, in the order they were added. An event's index
    /// is its command sequence number on the wire.
    pub events: Vec<ControlEvent>,
}

impl ControlPlan {
    /// An empty plan.
    pub fn new() -> ControlPlan {
        ControlPlan::default()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no command is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an arbitrary event.
    pub fn with(mut self, event: ControlEvent) -> ControlPlan {
        self.events.push(event);
        self
    }

    /// Appends a command at the default transport (QoS 1, not retained).
    pub fn command_at(
        self,
        at: SimTime,
        target: CommandTarget,
        command: FleetCommand,
    ) -> ControlPlan {
        self.command_with(at, target, command, QoS::AtLeastOnce, false)
    }

    /// Appends a command with an explicit QoS and retain flag.
    pub fn command_with(
        self,
        at: SimTime,
        target: CommandTarget,
        command: FleetCommand,
        qos: QoS,
        retain: bool,
    ) -> ControlPlan {
        self.with(ControlEvent {
            at,
            target,
            command,
            qos,
            retain,
        })
    }

    /// Appends a Tmeasure change.
    pub fn set_measure_interval(
        self,
        at: SimTime,
        target: CommandTarget,
        interval: SimDuration,
    ) -> ControlPlan {
        self.command_at(at, target, FleetCommand::SetMeasureInterval { interval })
    }

    /// Appends a tariff-hint update.
    pub fn set_tariff_hint(
        self,
        at: SimTime,
        target: CommandTarget,
        hint: TariffHint,
    ) -> ControlPlan {
        self.command_at(at, target, FleetCommand::SetTariffHint(hint))
    }

    /// Appends a meter-protocol switch.
    pub fn set_meter_kind(
        self,
        at: SimTime,
        target: CommandTarget,
        kind: MeterKind,
    ) -> ControlPlan {
        self.command_at(at, target, FleetCommand::SetMeterKind { kind })
    }

    /// Appends a reporting stop.
    pub fn stop_reporting(self, at: SimTime, target: CommandTarget) -> ControlPlan {
        self.command_at(at, target, FleetCommand::StopReporting)
    }

    /// Appends a reporting resume.
    pub fn start_reporting(self, at: SimTime, target: CommandTarget) -> ControlPlan {
        self.command_at(at, target, FleetCommand::StartReporting)
    }

    /// Appends a crash-recovery configuration change.
    pub fn crash_recovery(
        self,
        at: SimTime,
        target: CommandTarget,
        persist_store: bool,
    ) -> ControlPlan {
        self.command_at(
            at,
            target,
            FleetCommand::CrashRecoveryConfig { persist_store },
        )
    }

    /// Appends a staged rollout: the same command published to growing
    /// [`CommandTarget::Cohort`]s, one stage every `stagger`, starting at
    /// `at`. Cohorts of one rollout are nested — the 10 % stage is a subset
    /// of the 50 % stage — because the world draws every cohort of a run
    /// from one seeded fleet shuffle.
    pub fn staged_rollout(
        mut self,
        at: SimTime,
        stagger: SimDuration,
        percents: &[u8],
        command: FleetCommand,
        qos: QoS,
        retain: bool,
    ) -> ControlPlan {
        for (stage, &percent) in percents.iter().enumerate() {
            self = self.command_with(
                at + stagger * stage as u64,
                CommandTarget::Cohort { percent },
                command,
                qos,
                retain,
            );
        }
        self
    }

    /// Checks every event against the scenario population and horizon,
    /// returning the first inconsistency found.
    ///
    /// # Errors
    ///
    /// Returns the first [`ControlError`] found.
    pub fn validate(
        &self,
        devices: &[DeviceId],
        networks: &[AggregatorAddr],
        horizon: SimTime,
    ) -> Result<(), ControlError> {
        for event in &self.events {
            match event.target {
                CommandTarget::AllDevices => {}
                CommandTarget::Device(device) => {
                    if !devices.contains(&device) {
                        return Err(ControlError::UnknownDevice { device });
                    }
                }
                CommandTarget::Site(network) => {
                    if !networks.contains(&network) {
                        return Err(ControlError::UnknownNetwork { network });
                    }
                }
                CommandTarget::Cohort { percent } => {
                    if percent == 0 || percent > 100 {
                        return Err(ControlError::InvalidCohort { percent });
                    }
                }
            }
            // Events scheduled exactly at the horizon still execute (same
            // rule as topology scripts and fault plans), so only
            // strictly-later ones are unreachable.
            if event.at > horizon {
                return Err(ControlError::AfterHorizon { at: event.at });
            }
            match event.command {
                FleetCommand::SetMeasureInterval { interval } if interval.is_zero() => {
                    return Err(ControlError::ZeroMeasureInterval { at: event.at });
                }
                FleetCommand::SetTariffHint(hint) if !hint.is_valid() => {
                    return Err(ControlError::InvalidTariffHint { at: event.at });
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> (Vec<DeviceId>, Vec<AggregatorAddr>) {
        (
            vec![DeviceId(1), DeviceId(2)],
            vec![AggregatorAddr(1), AggregatorAddr(2)],
        )
    }

    #[test]
    fn valid_plan_passes() {
        let (devices, networks) = population();
        let plan = ControlPlan::new()
            .set_measure_interval(
                SimTime::from_secs(10),
                CommandTarget::Device(DeviceId(2)),
                SimDuration::from_millis(500),
            )
            .set_meter_kind(
                SimTime::from_secs(20),
                CommandTarget::Site(AggregatorAddr(1)),
                MeterKind::ModbusRtu,
            )
            .staged_rollout(
                SimTime::from_secs(30),
                SimDuration::from_secs(5),
                &[10, 50, 100],
                FleetCommand::StopReporting,
                QoS::ExactlyOnce,
                false,
            );
        assert_eq!(plan.len(), 5);
        assert!(plan
            .validate(&devices, &networks, SimTime::from_secs(60))
            .is_ok());
        // Exactly at the horizon is still reachable.
        assert!(plan
            .validate(&devices, &networks, SimTime::from_secs(45))
            .is_ok());
    }

    #[test]
    fn unknown_targets_are_rejected() {
        let (devices, networks) = population();
        let horizon = SimTime::from_secs(100);
        let plan = ControlPlan::new()
            .stop_reporting(SimTime::from_secs(1), CommandTarget::Device(DeviceId(99)));
        assert_eq!(
            plan.validate(&devices, &networks, horizon),
            Err(ControlError::UnknownDevice {
                device: DeviceId(99)
            })
        );
        let plan = ControlPlan::new().stop_reporting(
            SimTime::from_secs(1),
            CommandTarget::Site(AggregatorAddr(9)),
        );
        assert_eq!(
            plan.validate(&devices, &networks, horizon),
            Err(ControlError::UnknownNetwork {
                network: AggregatorAddr(9)
            })
        );
    }

    #[test]
    fn horizon_cohort_and_parameter_checks() {
        let (devices, networks) = population();
        let horizon = SimTime::from_secs(50);
        let late =
            ControlPlan::new().stop_reporting(SimTime::from_secs(51), CommandTarget::AllDevices);
        assert_eq!(
            late.validate(&devices, &networks, horizon),
            Err(ControlError::AfterHorizon {
                at: SimTime::from_secs(51)
            })
        );
        for percent in [0u8, 101] {
            let plan = ControlPlan::new()
                .stop_reporting(SimTime::from_secs(1), CommandTarget::Cohort { percent });
            assert_eq!(
                plan.validate(&devices, &networks, horizon),
                Err(ControlError::InvalidCohort { percent })
            );
        }
        let zero = ControlPlan::new().set_measure_interval(
            SimTime::from_secs(1),
            CommandTarget::AllDevices,
            SimDuration::ZERO,
        );
        assert!(matches!(
            zero.validate(&devices, &networks, horizon),
            Err(ControlError::ZeroMeasureInterval { .. })
        ));
        let bad_hint = ControlPlan::new().set_tariff_hint(
            SimTime::from_secs(1),
            CommandTarget::AllDevices,
            TariffHint::flat(-1.0),
        );
        assert!(matches!(
            bad_hint.validate(&devices, &networks, horizon),
            Err(ControlError::InvalidTariffHint { .. })
        ));
    }

    #[test]
    fn staged_rollout_spaces_stages_by_the_stagger() {
        let plan = ControlPlan::new().staged_rollout(
            SimTime::from_secs(10),
            SimDuration::from_secs(4),
            &[25, 100],
            FleetCommand::StartReporting,
            QoS::AtLeastOnce,
            true,
        );
        assert_eq!(plan.events[0].at, SimTime::from_secs(10));
        assert_eq!(plan.events[1].at, SimTime::from_secs(14));
        assert!(plan.events.iter().all(|e| e.retain));
        assert_eq!(plan.events[0].target, CommandTarget::Cohort { percent: 25 });
    }
}
