//! The bundled result of one [`Experiment`](crate::experiment::Experiment) run.

use rtem_aggregator::billing::CostBreakdown;
use rtem_core::metrics::{AccuracyWindow, HandshakeStats, WorldMetrics};
use rtem_core::simulation::World;
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_sensors::energy::{Millivolts, MilliwattHours};
use rtem_sim::trace::TimeSeries;
use rtem_telemetry::{MetricId, TelemetryReport};

/// The Fig. 5 accuracy windows of one network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkAccuracy {
    /// The network the windows belong to.
    pub network: AggregatorAddr,
    /// One entry per verification window inside the horizon.
    pub windows: Vec<AccuracyWindow>,
}

impl NetworkAccuracy {
    /// Windows past the registration transient in which devices actually
    /// reported — the ones the paper's 0.9–8.2 % band applies to.
    pub fn settled_windows(&self) -> impl Iterator<Item = &AccuracyWindow> {
        self.windows
            .iter()
            .filter(|w| w.index >= 2 && w.devices_total_mas > 0.0)
    }

    /// Mean aggregator-over-devices overhead across the settled windows.
    pub fn mean_overhead_percent(&self) -> Option<f64> {
        let overheads: Vec<f64> = self
            .settled_windows()
            .map(|w| w.overhead_percent())
            .collect();
        if overheads.is_empty() {
            None
        } else {
            Some(overheads.iter().sum::<f64>() / overheads.len() as f64)
        }
    }
}

/// Tamper-evidence summary of one network's ledger after the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerSummary {
    /// The network whose ledger this is.
    pub network: AggregatorAddr,
    /// Blocks in the chain (including genesis).
    pub blocks: usize,
    /// Records committed across all blocks.
    pub entries: usize,
    /// Whether the post-run audit found the chain untampered.
    pub audit_clean: bool,
    /// First inconsistent block, if the audit found one.
    pub first_bad_block: Option<u64>,
    /// Whether the cached per-device accounts still match the chain.
    pub accounts_match_chain: bool,
}

/// One device's consolidated bill at its home network.
#[derive(Debug, Clone, PartialEq)]
pub struct BillLine {
    /// The home network that issued the bill.
    pub network: AggregatorAddr,
    /// The billed device.
    pub device: DeviceId,
    /// Total charge billed, in microamp-seconds.
    pub charge_uas: u64,
    /// Charge collected while the device roamed in foreign networks.
    pub roaming_charge_uas: u64,
    /// Number of records billed.
    pub records: u64,
    /// Number of records that arrived via backfill (local storage).
    pub backfilled_records: u64,
    /// Accumulated cost in currency units.
    pub cost: f64,
    /// Per-component decomposition of `cost` (volumetric / demand /
    /// roaming share).
    pub breakdown: CostBreakdown,
    /// Peak sliding-window mean draw, mA (non-zero only under a
    /// demand-charge tariff).
    pub peak_demand_ma: f64,
}

impl BillLine {
    /// Billed energy at the given supply voltage.
    pub fn energy_at(&self, supply: Millivolts) -> MilliwattHours {
        use rtem_sensors::energy::MilliampSeconds;
        MilliampSeconds::from_uas(self.charge_uas).energy_at(supply)
    }

    /// Fraction of the billed charge that was collected abroad, in percent.
    pub fn roamed_percent(&self) -> f64 {
        if self.charge_uas == 0 {
            0.0
        } else {
            self.roaming_charge_uas as f64 / self.charge_uas as f64 * 100.0
        }
    }
}

/// Everything one experiment run produced.
///
/// The summaries (metrics, accuracy, handshakes, ledgers, bills) cover what
/// the paper's evaluation reports; [`world`](RunReport::world) keeps the
/// final simulation state for drill-down beyond them.
#[derive(Debug)]
pub struct RunReport {
    /// Whole-world health and handshake metrics.
    pub metrics: WorldMetrics,
    /// Fig. 5 accuracy windows, one entry per network.
    pub accuracy: Vec<NetworkAccuracy>,
    /// Thandshake statistics over every completed handshake.
    pub handshakes: Option<HandshakeStats>,
    /// Post-run ledger audit, one entry per network.
    pub ledgers: Vec<LedgerSummary>,
    /// Consolidated per-device bills, ordered by network then device.
    pub bills: Vec<BillLine>,
    /// Resilience accounting — present when the spec scheduled a fault plan.
    pub resilience: Option<crate::faults::ResilienceReport>,
    /// Control-plane accounting — present when the spec scheduled a control
    /// plan.
    pub control: Option<crate::control::ControlReport>,
    /// Telemetry collected during the run — present when the spec enabled it
    /// via [`with_telemetry`](crate::spec::ScenarioSpec::with_telemetry).
    pub telemetry: Option<TelemetryReport>,
    pub(crate) world: World,
}

impl RunReport {
    /// The final simulation state, for inspection beyond the summaries.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the final simulation state, for experiments that
    /// manipulate a finished run (e.g. the storage-tampering studies that go
    /// through `*_for_experiment` escape hatches).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The accuracy windows of one network.
    pub fn network_accuracy(&self, network: AggregatorAddr) -> Option<&NetworkAccuracy> {
        self.accuracy.iter().find(|a| a.network == network)
    }

    /// The ledger summary of one network.
    pub fn ledger(&self, network: AggregatorAddr) -> Option<&LedgerSummary> {
        self.ledgers.iter().find(|l| l.network == network)
    }

    /// The bill of one device, wherever its home network is.
    pub fn bill(&self, device: DeviceId) -> Option<&BillLine> {
        self.bills.iter().find(|b| b.device == device)
    }

    /// Total billed cost across every network's bills.
    pub fn total_billed_cost(&self) -> f64 {
        self.bills.iter().map(|b| b.cost).sum()
    }

    /// `true` when every network's ledger audits clean.
    pub fn all_ledgers_clean(&self) -> bool {
        self.ledgers.iter().all(|l| l.audit_clean)
    }

    /// Blocks sealed across all networks (genesis blocks excluded).
    pub fn sealed_blocks(&self) -> usize {
        self.ledgers
            .iter()
            .map(|l| l.blocks.saturating_sub(1))
            .sum()
    }

    /// The headline run series as CSV blocks, ready to pipe into a plotting
    /// tool: the per-network broker queue depth sampled by telemetry, and
    /// each network's accuracy-overhead trajectory across verification
    /// windows. Returns `None` when the run collected no telemetry.
    ///
    /// Each block is `# <series name>` followed by
    /// [`TimeSeries::to_csv`] output, blocks separated by blank lines.
    pub fn telemetry_csv(&self) -> Option<String> {
        let telemetry = self.telemetry.as_ref()?;
        let mut out = String::new();
        let mut push = |series: &TimeSeries| {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str("# ");
            out.push_str(series.name());
            out.push('\n');
            out.push_str(&series.to_csv());
        };
        for network in telemetry.networks() {
            push(&telemetry.network_series(network, MetricId::BrokerSessionQueueDepth));
        }
        for accuracy in &self.accuracy {
            let mut series =
                TimeSeries::new(format!("net-{} overhead_percent", accuracy.network.0));
            for window in accuracy.settled_windows() {
                series.push(window.start, window.overhead_percent());
            }
            push(&series);
        }
        Some(out)
    }

    /// Mean aggregator-over-devices overhead across every settled window of
    /// every network — the single-number Fig. 5 summary sweeps aggregate.
    pub fn mean_overhead_percent(&self) -> Option<f64> {
        let overheads: Vec<f64> = self
            .accuracy
            .iter()
            .flat_map(|a| a.settled_windows().map(|w| w.overhead_percent()))
            .collect();
        if overheads.is_empty() {
            None
        } else {
            Some(overheads.iter().sum::<f64>() / overheads.len() as f64)
        }
    }
}
