//! Fleet command-and-control accounting — the facade over `rtem-control`.
//!
//! Build a [`ControlPlan`] (Tmeasure changes, tariff hints, meter-protocol
//! switches, reporting mute/resume, crash-recovery configuration — targeted
//! at the whole fleet, one device, one site or a seeded rollout cohort),
//! attach it to a [`ScenarioSpec`](crate::spec::ScenarioSpec) with
//! [`with_control_plan`](crate::spec::ScenarioSpec::with_control_plan), and
//! run the experiment as usual. The commands travel over the same simulated
//! MQTT broker as the metering traffic — per-device command topics, QoS 1/2,
//! optional retained publishes — and the run's
//! [`RunReport`](crate::report::RunReport) then carries a [`ControlReport`]:
//! per-command delivery/application/acknowledgment records, rollout
//! completion rate and latency, and the wire bytes the control plane cost.
//!
//! ```
//! use rtem::prelude::*;
//!
//! let plan = ControlPlan::new().set_measure_interval(
//!     SimTime::from_secs(20),
//!     CommandTarget::AllDevices,
//!     SimDuration::from_millis(500),
//! );
//! let spec = ScenarioSpec::paper_testbed(42)
//!     .with_horizon(SimDuration::from_secs(40))
//!     .with_control_plan(plan);
//! let report = Experiment::new(spec).run().unwrap();
//! let control = report.control.as_ref().unwrap();
//! assert_eq!(control.applied(), 4, "every device executed the command");
//! assert_eq!(control.completion_rate(), Some(1.0));
//! ```

use rtem_sim::time::{SimDuration, SimTime};

pub use rtem_control::command::{
    command_topic, status_topic, CommandAck, CommandFrame, ControlDecodeError, FleetCommand,
    TariffHint,
};
pub use rtem_control::plan::{CommandTarget, ControlError, ControlEvent, ControlPlan};
pub use rtem_core::simulation::CommandRecord;

/// Control-plane accounting of one commanded run.
///
/// Attached to [`RunReport::control`](crate::report::RunReport::control)
/// whenever the spec's control plan is non-empty. Deterministic: the same
/// spec (plan included) and seed produce an identical report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlReport {
    /// Lifecycle record of every scheduled command, in plan order (the
    /// record's `seq` is the event's index in the plan).
    pub commands: Vec<CommandRecord>,
}

impl ControlReport {
    /// Number of commands the plan scheduled.
    pub fn commands(&self) -> usize {
        self.commands.len()
    }

    /// Device targets across all commands (a device targeted by two
    /// commands counts twice).
    pub fn targets(&self) -> usize {
        self.commands.iter().map(|c| c.targets).sum()
    }

    /// Command executions accepted by device firmware.
    pub fn applied(&self) -> usize {
        self.commands.iter().map(|c| c.applied).sum()
    }

    /// Command executions rejected by device firmware (bad parameter).
    pub fn rejected(&self) -> usize {
        self.commands.iter().map(|c| c.rejected).sum()
    }

    /// Acknowledgments that made it back to the fleet manager.
    pub fn acked(&self) -> usize {
        self.commands.iter().map(|c| c.acked).sum()
    }

    /// `acked / targets` over the whole plan, `None` when nothing was
    /// targeted. `Some(1.0)` means every addressed device executed its
    /// command *and* the acknowledgment round-trip completed.
    pub fn completion_rate(&self) -> Option<f64> {
        let targets = self.targets();
        (targets > 0).then(|| self.acked() as f64 / targets as f64)
    }

    /// The record of one command by sequence number.
    pub fn command(&self, seq: u32) -> Option<&CommandRecord> {
        self.commands.iter().find(|c| c.seq == seq)
    }

    /// When the first command was published, `None` before anything fired.
    pub fn first_publish(&self) -> Option<SimTime> {
        self.commands.iter().filter_map(|c| c.published_at).min()
    }

    /// When the last acknowledgment reached the manager.
    pub fn last_ack(&self) -> Option<SimTime> {
        self.commands.iter().filter_map(|c| c.last_ack_at).max()
    }

    /// End-to-end rollout latency: first publish to last acknowledgment
    /// across the whole plan. For a staged rollout this is the makespan of
    /// the rollout, stagger included.
    pub fn rollout_latency(&self) -> Option<SimDuration> {
        match (self.first_publish(), self.last_ack()) {
            (Some(first), Some(last)) => Some(last.saturating_duration_since(first)),
            _ => None,
        }
    }

    /// Acknowledgment latency of one command: its publish to its last ack.
    pub fn ack_latency(&self, seq: u32) -> Option<SimDuration> {
        let record = self.command(seq)?;
        match (record.published_at, record.last_ack_at) {
            (Some(published), Some(acked)) => Some(acked.saturating_duration_since(published)),
            _ => None,
        }
    }

    /// `true` when every command's acknowledgments match its targets.
    pub fn fully_acked(&self) -> bool {
        self.commands.iter().all(|c| c.acked == c.targets)
    }

    /// Wire bytes the control plane cost: delivered command frames plus
    /// delivered acknowledgments, under the broker's own size model.
    pub fn wire_bytes(&self) -> u64 {
        self.commands
            .iter()
            .map(|c| c.command_bytes + c.ack_bytes)
            .sum()
    }
}

/// Assembles the report from the world's command records.
pub(crate) fn build_control(commands: Vec<CommandRecord>) -> ControlReport {
    ControlReport { commands }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u32, published: u64, targets: usize, acked: usize, last: u64) -> CommandRecord {
        CommandRecord {
            seq,
            published_at: Some(SimTime::from_secs(published)),
            targets,
            delivered: acked,
            applied: acked,
            rejected: 0,
            acked,
            first_ack_at: Some(SimTime::from_secs(published)),
            last_ack_at: Some(SimTime::from_secs(last)),
            command_bytes: 100,
            ack_bytes: 40,
        }
    }

    #[test]
    fn totals_and_rates_aggregate_over_commands() {
        let report = build_control(vec![record(0, 10, 4, 4, 12), record(1, 20, 4, 2, 25)]);
        assert_eq!(report.commands(), 2);
        assert_eq!(report.targets(), 8);
        assert_eq!(report.acked(), 6);
        assert_eq!(report.completion_rate(), Some(0.75));
        assert!(!report.fully_acked());
        assert_eq!(report.wire_bytes(), 280);
        assert_eq!(
            report.rollout_latency(),
            Some(SimDuration::from_secs(15)),
            "first publish at 10 s, last ack at 25 s"
        );
        assert_eq!(report.ack_latency(1), Some(SimDuration::from_secs(5)));
    }

    #[test]
    fn empty_report_yields_no_rates() {
        let report = build_control(Vec::new());
        assert_eq!(report.completion_rate(), None);
        assert_eq!(report.rollout_latency(), None);
        assert!(report.fully_acked(), "vacuously true");
    }
}
