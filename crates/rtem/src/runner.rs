//! Incremental execution of one experiment: the [`RunHandle`].
//!
//! [`Experiment::run`](crate::experiment::Experiment::run) is batch-only —
//! the world runs to the horizon and you get one terminal
//! [`RunReport`]. A handle obtained from
//! [`Experiment::start`](crate::experiment::Experiment::start) instead
//! advances the same world in caller-chosen slices, exposing live
//! [`progress`](RunHandle::progress) snapshots between steps and
//! dispatching every milestone to an attached
//! [`Probe`]. Stepping granularity never changes the
//! outcome: the event stream is identical however the run is sliced.
//!
//! ```
//! use rtem::prelude::*;
//!
//! let spec = ScenarioSpec::paper_testbed(42).with_horizon(SimDuration::from_secs(30));
//! let mut handle = Experiment::new(spec).start().unwrap();
//! while !handle.is_finished() {
//!     handle.step_window();
//!     let progress = handle.progress();
//!     assert!(progress.fraction <= 1.0);
//! }
//! let report = handle.finish();
//! assert!(report.all_ledgers_clean());
//! ```

use crate::experiment::collect_report;
use crate::probe::{NullProbe, Probe};
use crate::report::RunReport;
use crate::spec::ScenarioSpec;
use rtem_core::metrics::accuracy_windows_from;
use rtem_core::simulation::World;
use rtem_net::packet::AggregatorAddr;
use rtem_sim::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// A live, incrementally-advanced experiment run.
///
/// Created by [`Experiment::start`](crate::experiment::Experiment::start)
/// (no observer) or
/// [`Experiment::start_probed`](crate::experiment::Experiment::start_probed)
/// (with one). The handle owns the world; advance it with
/// [`step_window`](Self::step_window), [`step`](Self::step) or
/// [`run_to`](Self::run_to), then [`finish`](Self::finish) to collect the
/// final report.
#[derive(Debug)]
pub struct RunHandle<P: Probe = NullProbe> {
    spec: ScenarioSpec,
    world: World,
    horizon: SimTime,
    position: SimTime,
    probe: P,
    // Precomputed clean-twin overhead for the resilience accounting (set by
    // Suite so a shared baseline is simulated once per grid, not per cell).
    clean_baseline: Option<Option<f64>>,
    // Running Fig. 5 accuracy per network, extended incrementally so
    // repeated progress() polls stay O(new windows) instead of recomputing
    // the whole window history every call.
    running_accuracy: RefCell<BTreeMap<AggregatorAddr, RunningAccuracy>>,
}

/// Incrementally-maintained settled-window overhead of one network.
#[derive(Debug, Clone, Copy, Default)]
struct RunningAccuracy {
    windows_done: usize,
    overhead_sum: f64,
    settled: usize,
}

/// Live snapshot of a run's progress, from [`RunHandle::progress`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunProgress {
    /// How far the run has been advanced.
    pub position: SimTime,
    /// The spec's horizon.
    pub horizon: SimTime,
    /// `position / horizon`, in `[0, 1]`.
    pub fraction: f64,
    /// Blocks sealed so far across all networks (genesis excluded).
    pub sealed_blocks: usize,
    /// Devices that have completed at least one registration handshake.
    pub completed_handshakes: usize,
    /// Devices currently plugged in but not yet registered — handshakes in
    /// flight.
    pub handshakes_in_flight: usize,
    /// Per-network running state.
    pub networks: Vec<NetworkProgress>,
}

/// Per-network slice of a [`RunProgress`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProgress {
    /// The network.
    pub network: AggregatorAddr,
    /// Devices currently registered (master + temporary).
    pub members: usize,
    /// Blocks in the network's ledger (genesis included).
    pub blocks: usize,
    /// Consumption reports accepted so far.
    pub reports_accepted: u64,
    /// Mean aggregator-over-devices overhead across the settled verification
    /// windows seen so far (the paper's Fig. 5 running accuracy), if any
    /// window has settled yet.
    ///
    /// Computed incrementally: each window is accounted once, when it
    /// completes. Records backfilled *after* a window completed appear in
    /// the final report's windows but not retroactively in this live gauge.
    pub running_overhead_percent: Option<f64>,
}

impl<P: Probe> RunHandle<P> {
    pub(crate) fn new(spec: ScenarioSpec, world: World, probe: P) -> RunHandle<P> {
        let horizon = SimTime::ZERO + spec.horizon;
        let mut handle = RunHandle {
            spec,
            world,
            horizon,
            position: SimTime::ZERO,
            probe,
            clean_baseline: None,
            running_accuracy: RefCell::new(BTreeMap::new()),
        };
        // Build-time milestones (the initial plug-ins) are already buffered.
        handle.pump();
        handle
    }

    pub(crate) fn set_clean_baseline(&mut self, baseline: Option<f64>) {
        self.clean_baseline = Some(baseline);
    }

    /// The spec being run.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// How far the run has been advanced.
    pub fn position(&self) -> SimTime {
        self.position
    }

    /// The run horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// `true` once the run has reached its horizon.
    pub fn is_finished(&self) -> bool {
        self.position >= self.horizon
    }

    /// Shared access to the live world, for drill-down between steps.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Shared access to the attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the attached probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Advances the run to absolute time `to` (clamped to the horizon;
    /// already-passed times are a no-op), dispatching milestones to the
    /// probe. Returns the new position.
    pub fn run_to(&mut self, to: SimTime) -> SimTime {
        let target = to.min(self.horizon);
        if target > self.position {
            self.world.run_until(target);
            self.position = target;
            self.pump();
        }
        self.position
    }

    /// Advances the run by `dt`. Returns the new position.
    pub fn step(&mut self, dt: SimDuration) -> SimTime {
        let target = self.position + dt;
        self.run_to(target)
    }

    /// Advances the run by one verification window. Returns the new
    /// position.
    pub fn step_window(&mut self) -> SimTime {
        self.step(self.spec.verification_window)
    }

    /// Runs the remainder of the horizon and collects the final report.
    pub fn finish(mut self) -> RunReport {
        self.run_to(self.horizon);
        collect_report(&self.spec, self.world, self.horizon, self.clean_baseline)
    }

    /// Like [`finish`](Self::finish), but also hands the probe back for
    /// inspection.
    pub fn finish_probed(mut self) -> (RunReport, P) {
        self.run_to(self.horizon);
        let report = collect_report(&self.spec, self.world, self.horizon, self.clean_baseline);
        (report, self.probe)
    }

    /// A live snapshot: sim-time position, sealed blocks, in-flight
    /// handshakes and per-network running accuracy.
    pub fn progress(&self) -> RunProgress {
        let mut sealed_blocks = 0;
        let mut networks = Vec::new();
        let mut cache = self.running_accuracy.borrow_mut();
        for addr in self.world.networks() {
            let Some(aggregator) = self.world.aggregator(addr) else {
                continue;
            };
            let blocks = aggregator.ledger().chain().len();
            sealed_blocks += blocks.saturating_sub(1);
            // Extend the cached prefix with the windows that completed since
            // the last poll.
            let running = cache.entry(addr).or_default();
            let new_windows = accuracy_windows_from(
                &self.world,
                addr,
                self.spec.verification_window,
                running.windows_done,
                self.position,
            );
            for window in &new_windows {
                // Same settling criterion as NetworkAccuracy::settled_windows:
                // past the registration transient, with devices reporting.
                if window.index >= 2 && window.devices_total_mas > 0.0 {
                    running.overhead_sum += window.overhead_percent();
                    running.settled += 1;
                }
            }
            running.windows_done += new_windows.len();
            networks.push(NetworkProgress {
                network: addr,
                members: aggregator.registry().len(),
                blocks,
                reports_accepted: aggregator.reports_accepted(),
                running_overhead_percent: (running.settled > 0)
                    .then(|| running.overhead_sum / running.settled as f64),
            });
        }
        drop(cache);
        let mut completed_handshakes = 0;
        let mut handshakes_in_flight = 0;
        for (_, device) in self.world.devices() {
            if device.last_handshake().is_some() {
                completed_handshakes += 1;
            }
            if device.is_plugged() && !device.is_registered() {
                handshakes_in_flight += 1;
            }
        }
        RunProgress {
            position: self.position,
            horizon: self.horizon,
            fraction: if self.horizon == SimTime::ZERO {
                1.0
            } else {
                (self.position.as_secs_f64() / self.horizon.as_secs_f64()).min(1.0)
            },
            sealed_blocks,
            completed_handshakes,
            handshakes_in_flight,
            networks,
        }
    }

    fn pump(&mut self) {
        for event in self.world.take_notifications() {
            self.probe.on_event(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::probe::RecordingProbe;

    fn spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec::paper_testbed(seed).with_horizon(SimDuration::from_secs(25))
    }

    #[test]
    fn handle_steps_to_the_horizon() {
        let mut handle = Experiment::new(spec(5)).start().unwrap();
        assert!(!handle.is_finished());
        let mut steps = 0;
        while !handle.is_finished() {
            handle.step_window();
            steps += 1;
            assert!(steps <= 10, "must terminate");
        }
        assert_eq!(handle.position(), handle.horizon());
        let report = handle.finish();
        assert!(report.all_ledgers_clean());
    }

    #[test]
    fn progress_advances_monotonically() {
        let spec = ScenarioSpec::paper_testbed(6).with_horizon(SimDuration::from_secs(40));
        let mut handle = Experiment::new(spec).start().unwrap();
        let start = handle.progress();
        assert_eq!(start.fraction, 0.0);
        assert_eq!(start.sealed_blocks, 0);
        handle.run_to(SimTime::from_secs(35));
        let mid = handle.progress();
        assert!(mid.fraction > 0.8 && mid.fraction < 0.9);
        assert!(mid.sealed_blocks > 0, "blocks sealed by 35 s");
        assert_eq!(mid.completed_handshakes, 4);
        assert!(mid.networks.iter().any(|n| n.reports_accepted > 0));
        assert!(mid
            .networks
            .iter()
            .any(|n| n.running_overhead_percent.is_some()));
    }

    #[test]
    fn probe_sees_milestones_in_order() {
        let handle = Experiment::new(spec(7))
            .start_probed(RecordingProbe::default())
            .unwrap();
        let (report, probe) = handle.finish_probed();
        assert!(probe.blocks_sealed() > 0);
        assert_eq!(probe.handshakes_completed(), 4);
        assert_eq!(probe.plug_ins(), 4, "initial build-time plug-ins");
        let events: Vec<_> = probe.events().iter().collect();
        assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
        assert_eq!(report.metrics.networks.len(), 2);
    }
}
