//! The declarative scenario description consumed by [`Experiment`].
//!
//! Before the facade existed, expressing an experiment meant assembling a
//! `ScenarioBuilder`, a `WorldConfig`, a `HandshakeTiming` and an
//! `Ina219Config` by hand and then scripting plug/unplug events directly on
//! the built `World`. [`ScenarioSpec`] gathers all of that into one value
//! that can be validated up front, compared, reused across runs and (being
//! plain data) mapped onto whatever execution substrate future scaling work
//! introduces.
//!
//! [`Experiment`]: crate::experiment::Experiment

use core::fmt;
use rtem_aggregator::aggregator::RetentionPolicy;
use rtem_aggregator::billing::{Tariff, TariffError};
use rtem_codecs::MeterKind;
use rtem_control::plan::{ControlError, ControlEvent, ControlPlan};
use rtem_core::scenario::{DeviceLoad, ScenarioBuilder};
use rtem_core::simulation::WorldConfig;
use rtem_device::network_mgmt::HandshakeTiming;
use rtem_faults::event::FaultEvent;
use rtem_faults::plan::{FaultPlan, FaultPlanError};
use rtem_net::link::LinkConfig;
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_sensors::ina219::Ina219Config;
use rtem_sim::time::{SimDuration, SimTime};
use rtem_telemetry::TelemetryConfig;
use rtem_workloads::{WorkloadError, WorkloadModel};

/// One scripted topology change applied during a run.
///
/// Script events are the declarative replacement for calling
/// `World::schedule_unplug` / `schedule_plug_in` / `schedule_remove_device`
/// by hand between building and running a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptEvent {
    /// Plug `device` into `network` at `at`.
    PlugIn {
        /// When the plug-in happens.
        at: SimTime,
        /// The device being plugged in.
        device: DeviceId,
        /// The network receiving it.
        network: AggregatorAddr,
    },
    /// Unplug `device` from whatever network it is in at `at`.
    Unplug {
        /// When the unplug happens.
        at: SimTime,
        /// The device being unplugged.
        device: DeviceId,
    },
    /// The home network `home` removes `device` (loss / ownership change,
    /// sequence 3 of the paper's Fig. 3).
    RemoveDevice {
        /// When the removal is issued.
        at: SimTime,
        /// The device being removed.
        device: DeviceId,
        /// The home network issuing the removal.
        home: AggregatorAddr,
    },
}

impl ScriptEvent {
    /// The simulated time at which the event fires.
    pub fn at(&self) -> SimTime {
        match *self {
            ScriptEvent::PlugIn { at, .. }
            | ScriptEvent::Unplug { at, .. }
            | ScriptEvent::RemoveDevice { at, .. } => at,
        }
    }

    /// The device the event concerns.
    pub fn device(&self) -> DeviceId {
        match *self {
            ScriptEvent::PlugIn { device, .. }
            | ScriptEvent::Unplug { device, .. }
            | ScriptEvent::RemoveDevice { device, .. } => device,
        }
    }
}

/// Why a [`ScenarioSpec`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecError {
    /// The spec declares zero networks — there is nothing to meter.
    NoNetworks,
    /// The spec declares zero devices per network — nothing reports.
    NoDevices,
    /// `networks + empty_networks` does not fit the address space — the
    /// spec would overflow instead of enumerating its networks.
    TooManyNetworks {
        /// Declared populated networks.
        networks: u32,
        /// Declared initially-empty networks.
        empty_networks: u32,
    },
    /// With more than one network, the generated device-id scheme reserves
    /// a fixed-size id block per network; more devices per network than the
    /// block holds would silently collide across networks.
    TooManyDevicesPerNetwork {
        /// Declared devices per network.
        devices_per_network: u32,
        /// Size of each network's device-id block.
        limit: u32,
    },
    /// The run horizon is zero — the world would never advance.
    ZeroHorizon,
    /// The measurement interval (Tmeasure) is zero — devices would spin.
    ZeroMeasureInterval,
    /// The verification window is zero — no block could ever be sealed.
    ZeroVerificationWindow,
    /// A script event refers to a device the spec does not generate.
    UnknownScriptDevice {
        /// The offending device id.
        device: DeviceId,
    },
    /// A script event refers to a network the spec does not generate.
    UnknownScriptNetwork {
        /// The offending network address.
        network: AggregatorAddr,
    },
    /// A script event fires after the horizon and would never run (events
    /// at exactly the horizon still execute).
    ScriptEventAfterHorizon {
        /// When the event was scheduled.
        at: SimTime,
    },
    /// The spec's fault plan failed its own validation (unknown targets,
    /// inverted timelines, degenerate parameters).
    InvalidFaultPlan(FaultPlanError),
    /// The spec's control plan failed its own validation (unknown targets,
    /// events past the horizon, degenerate parameters).
    InvalidControlPlan(ControlError),
    /// The spec's tariff failed its own validation (overlapping time-of-use
    /// windows, empty tier ladders, negative rates …).
    InvalidTariff(TariffError),
    /// The spec's workload model failed its own validation (negative
    /// magnitudes, inverted business hours, empty mixes …).
    InvalidWorkload(WorkloadError),
    /// The spec's telemetry configuration is incoherent (zero snapshot
    /// interval or zero profiler sampling stride).
    InvalidTelemetry,
    /// The spec declares zero shards — the event loop needs at least one
    /// worker lane to execute on.
    ZeroShards,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoNetworks => write!(f, "scenario declares zero networks"),
            SpecError::NoDevices => write!(f, "scenario declares zero devices per network"),
            SpecError::TooManyNetworks {
                networks,
                empty_networks,
            } => write!(
                f,
                "{networks} networks + {empty_networks} empty networks overflow the address space"
            ),
            SpecError::TooManyDevicesPerNetwork {
                devices_per_network,
                limit,
            } => write!(
                f,
                "{devices_per_network} devices per network exceed the {limit}-id block reserved \
                 per network (ids would collide across networks)"
            ),
            SpecError::ZeroHorizon => write!(f, "scenario horizon is zero"),
            SpecError::ZeroMeasureInterval => write!(f, "measurement interval is zero"),
            SpecError::ZeroVerificationWindow => write!(f, "verification window is zero"),
            SpecError::UnknownScriptDevice { device } => {
                write!(f, "script refers to unknown device {device:?}")
            }
            SpecError::UnknownScriptNetwork { network } => {
                write!(f, "script refers to unknown network {network:?}")
            }
            SpecError::ScriptEventAfterHorizon { at } => {
                write!(f, "script event at {at:?} is after the horizon")
            }
            SpecError::InvalidFaultPlan(error) => write!(f, "invalid fault plan: {error}"),
            SpecError::InvalidControlPlan(error) => write!(f, "invalid control plan: {error}"),
            SpecError::InvalidTariff(error) => write!(f, "invalid tariff: {error}"),
            SpecError::InvalidWorkload(error) => write!(f, "invalid workload: {error}"),
            SpecError::InvalidTelemetry => {
                write!(
                    f,
                    "invalid telemetry config: snapshot interval and profiler \
                     sampling stride must be non-zero"
                )
            }
            SpecError::ZeroShards => write!(f, "scenario declares zero shards"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Declarative description of one metering experiment.
///
/// A spec fixes the topology (networks x devices), the load each device
/// draws, the timing parameters, the link quality, the sensor model, the
/// random seed, the run horizon and any scripted topology changes. Feed it
/// to [`Experiment::new`](crate::experiment::Experiment::new) and call
/// `run()` to obtain a [`RunReport`](crate::report::RunReport).
///
/// ```
/// use rtem::prelude::*;
///
/// let report = Experiment::new(
///     ScenarioSpec::paper_testbed(42).with_horizon(SimDuration::from_secs(30)),
/// )
/// .run()
/// .unwrap();
/// assert_eq!(report.metrics.networks.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Number of networks; each gets one trusted aggregator.
    pub networks: u32,
    /// Devices initially plugged into each network.
    pub devices_per_network: u32,
    /// Additional networks that start with no homed devices — destinations
    /// for scripted mobility (e.g. a fleet roaming out of one home network).
    pub empty_networks: u32,
    /// Load profile attached to every device.
    pub load: DeviceLoad,
    /// Diurnal workload model overriding `load` when set (see
    /// [`WorkloadModel`]): the [`Mix`](WorkloadModel::Mix) variant assigns
    /// component workloads round-robin by device ordinal.
    pub workload: Option<WorkloadModel>,
    /// Meter protocols the fleet speaks, assigned round-robin by device
    /// ordinal (see [`MeterKind`]). Empty means every device speaks
    /// `MeterKind::Internal`, the native packet encoding — bit-identical
    /// behavior with every earlier revision of the testbed.
    pub meter_kinds: Vec<MeterKind>,
    /// Tariff every aggregator's billing engine applies.
    pub tariff: Tariff,
    /// Random seed for the whole world (same seed, same run).
    pub seed: u64,
    /// How long to simulate.
    pub horizon: SimDuration,
    /// Reporting interval of every device (the paper's Tmeasure, 100 ms).
    pub t_measure: SimDuration,
    /// Interval between the aggregator's own upstream samples.
    pub upstream_sample_interval: SimDuration,
    /// Length of one verification window (one sealed block per window).
    pub verification_window: SimDuration,
    /// Access-link quality between devices and their aggregator's broker.
    pub wifi: LinkConfig,
    /// Backhaul link quality between aggregators.
    pub backhaul: LinkConfig,
    /// Handshake phase timing used by the devices.
    pub handshake: HandshakeTiming,
    /// Sensor model used by the devices.
    pub sensor: Ina219Config,
    /// Scripted topology changes applied during the run.
    pub script: Vec<ScriptEvent>,
    /// Scheduled fault injections applied during the run (the resilience
    /// counterpart of `script`). A non-empty plan makes the run's
    /// [`RunReport`](crate::report::RunReport) carry a
    /// [`ResilienceReport`](crate::faults::ResilienceReport).
    pub fault_plan: FaultPlan,
    /// Scheduled fleet commands published over the MQTT control plane (the
    /// operations counterpart of `fault_plan`). A non-empty plan makes the
    /// run's [`RunReport`](crate::report::RunReport) carry a
    /// [`ControlReport`](crate::control::ControlReport).
    pub control_plan: ControlPlan,
    /// Telemetry collection for the run (the observability counterpart of
    /// `fault_plan` / `control_plan`). `Some` makes the run's
    /// [`RunReport`](crate::report::RunReport) carry a
    /// [`TelemetryReport`](rtem_telemetry::TelemetryReport); `None` (the
    /// default) records nothing. Either way the simulation outcome is
    /// bit-identical — telemetry only reads state the run already keeps.
    pub telemetry: Option<TelemetryConfig>,
    /// Worker lanes the event loop may fan device ticks across. `1` (the
    /// default) runs fully sequentially; any value produces bit-identical
    /// reports — sharding only changes wall-clock time, never outcomes.
    pub shards: usize,
    /// Ledger / series retention policy. `KeepAll` (the default) retains
    /// the complete run history in memory; `ActiveWindows(n)` seals and
    /// evicts everything older than `n` verification windows behind a
    /// digest chain, bounding resident state to the active window while
    /// keeping audits, bills and accuracy metrics bit-identical.
    pub retention: RetentionPolicy,
}

impl ScenarioSpec {
    /// The paper's testbed (§III-A): two networks, two ESP32-class charging
    /// devices each, reporting every 100 ms, run for 100 s.
    pub fn paper_testbed(seed: u64) -> ScenarioSpec {
        let world = WorldConfig::default();
        ScenarioSpec {
            networks: 2,
            devices_per_network: 2,
            empty_networks: 0,
            load: DeviceLoad::EspCharging,
            workload: None,
            meter_kinds: Vec::new(),
            tariff: Tariff::default(),
            seed,
            horizon: SimDuration::from_secs(100),
            t_measure: world.t_measure,
            upstream_sample_interval: world.upstream_sample_interval,
            verification_window: world.verification_window,
            wifi: world.wifi,
            backhaul: world.backhaul,
            handshake: HandshakeTiming::testbed(),
            sensor: Ina219Config::testbed(),
            script: Vec::new(),
            fault_plan: FaultPlan::new(),
            control_plan: ControlPlan::new(),
            telemetry: None,
            shards: 1,
            retention: RetentionPolicy::KeepAll,
        }
    }

    /// A single network with `devices` devices (scalability sweeps).
    pub fn single_network(devices: u32, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            networks: 1,
            devices_per_network: devices,
            ..ScenarioSpec::paper_testbed(seed)
        }
    }

    /// Address of the `i`-th network (0-based index, 1-based address, like
    /// the paper's "Network 1" / "Network 2").
    pub fn network_addr(i: u32) -> AggregatorAddr {
        ScenarioBuilder::network_addr(i)
    }

    /// Id of the `j`-th device of the `i`-th network.
    pub fn device_id(network: u32, j: u32) -> DeviceId {
        ScenarioBuilder::device_id(network, j)
    }

    /// Sets the number of networks.
    pub fn with_networks(mut self, networks: u32) -> ScenarioSpec {
        self.networks = networks;
        self
    }

    /// Sets the number of devices per network.
    pub fn with_devices_per_network(mut self, devices: u32) -> ScenarioSpec {
        self.devices_per_network = devices;
        self
    }

    /// Adds networks that start empty (scripted-mobility destinations).
    pub fn with_empty_networks(mut self, networks: u32) -> ScenarioSpec {
        self.empty_networks = networks;
        self
    }

    /// Sets the per-device load.
    pub fn with_load(mut self, load: DeviceLoad) -> ScenarioSpec {
        self.load = load;
        self
    }

    /// Sets a diurnal workload model, overriding the legacy
    /// [`DeviceLoad`] shapes.
    ///
    /// ```
    /// use rtem::prelude::*;
    ///
    /// let spec = ScenarioSpec::paper_testbed(1)
    ///     .with_workload(WorkloadModel::neighborhood())
    ///     .with_tariff(Tariff::evening_peak(1.0));
    /// assert_eq!(spec.validate(), Ok(()));
    /// ```
    pub fn with_workload(mut self, workload: WorkloadModel) -> ScenarioSpec {
        self.workload = Some(workload);
        self
    }

    /// Sets the meter protocols the fleet speaks, assigned round-robin by
    /// device ordinal. One entry gives a homogeneous fleet, several a
    /// heterogeneous mix; empty (the default) keeps the native encoding.
    ///
    /// ```
    /// use rtem::prelude::*;
    ///
    /// let spec = ScenarioSpec::paper_testbed(1)
    ///     .with_meter_kinds(vec![MeterKind::Sml, MeterKind::ModbusRtu]);
    /// assert_eq!(spec.validate(), Ok(()));
    /// ```
    pub fn with_meter_kinds(mut self, kinds: Vec<MeterKind>) -> ScenarioSpec {
        self.meter_kinds = kinds;
        self
    }

    /// Sets the tariff the aggregators bill under.
    pub fn with_tariff(mut self, tariff: Tariff) -> ScenarioSpec {
        self.tariff = tariff;
        self
    }

    /// Sets the run horizon.
    pub fn with_horizon(mut self, horizon: SimDuration) -> ScenarioSpec {
        self.horizon = horizon;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> ScenarioSpec {
        self.seed = seed;
        self
    }

    /// Sets the verification window length.
    pub fn with_verification_window(mut self, window: SimDuration) -> ScenarioSpec {
        self.verification_window = window;
        self
    }

    /// Sets the device sensor model (e.g. `Ina219Config::ideal()` for the
    /// error-decomposition ablation).
    pub fn with_sensor(mut self, sensor: Ina219Config) -> ScenarioSpec {
        self.sensor = sensor;
        self
    }

    /// Sets the access and backhaul link quality.
    pub fn with_links(mut self, wifi: LinkConfig, backhaul: LinkConfig) -> ScenarioSpec {
        self.wifi = wifi;
        self.backhaul = backhaul;
        self
    }

    /// Appends a scripted plug-in.
    pub fn plug_in_at(
        mut self,
        at: SimTime,
        device: DeviceId,
        network: AggregatorAddr,
    ) -> ScenarioSpec {
        self.script.push(ScriptEvent::PlugIn {
            at,
            device,
            network,
        });
        self
    }

    /// Appends a scripted unplug.
    pub fn unplug_at(mut self, at: SimTime, device: DeviceId) -> ScenarioSpec {
        self.script.push(ScriptEvent::Unplug { at, device });
        self
    }

    /// Appends a scripted device removal by its home network.
    pub fn remove_device_at(
        mut self,
        at: SimTime,
        device: DeviceId,
        home: AggregatorAddr,
    ) -> ScenarioSpec {
        self.script
            .push(ScriptEvent::RemoveDevice { at, device, home });
        self
    }

    /// Replaces the fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> ScenarioSpec {
        self.fault_plan = plan;
        self
    }

    /// Appends one fault event to the plan.
    pub fn with_fault(mut self, event: FaultEvent) -> ScenarioSpec {
        self.fault_plan.events.push(event);
        self
    }

    /// Replaces the control plan.
    pub fn with_control_plan(mut self, plan: ControlPlan) -> ScenarioSpec {
        self.control_plan = plan;
        self
    }

    /// Appends one fleet command to the control plan.
    pub fn with_command(mut self, event: ControlEvent) -> ScenarioSpec {
        self.control_plan.events.push(event);
        self
    }

    /// Enables telemetry collection for the run.
    ///
    /// ```
    /// use rtem::prelude::*;
    ///
    /// let spec = ScenarioSpec::paper_testbed(1)
    ///     .with_telemetry(TelemetryConfig::default());
    /// assert_eq!(spec.validate(), Ok(()));
    /// ```
    pub fn with_telemetry(mut self, config: TelemetryConfig) -> ScenarioSpec {
        self.telemetry = Some(config);
        self
    }

    /// Sets the number of worker lanes the event loop fans device ticks
    /// across. Any shard count produces bit-identical reports; pick the
    /// core count for the fastest wall clock on large fleets.
    ///
    /// ```
    /// use rtem::prelude::*;
    ///
    /// let spec = ScenarioSpec::paper_testbed(1).with_shards(4);
    /// assert_eq!(spec.validate(), Ok(()));
    /// ```
    pub fn with_shards(mut self, shards: usize) -> ScenarioSpec {
        self.shards = shards;
        self
    }

    /// Bounds resident memory to roughly `windows` verification windows:
    /// older ledger blocks are sealed behind a digest chain and older
    /// series samples are folded into per-window summaries, keeping
    /// audits, bills and accuracy metrics bit-identical to a keep-all run.
    ///
    /// ```
    /// use rtem::prelude::*;
    ///
    /// let spec = ScenarioSpec::paper_testbed(1).with_bounded_memory(8);
    /// assert_eq!(spec.validate(), Ok(()));
    /// ```
    pub fn with_bounded_memory(mut self, windows: usize) -> ScenarioSpec {
        self.retention = RetentionPolicy::ActiveWindows(windows);
        self
    }

    /// Sets the retention policy directly (see [`RetentionPolicy`]).
    pub fn with_retention(mut self, retention: RetentionPolicy) -> ScenarioSpec {
        self.retention = retention;
        self
    }

    /// All device ids the spec generates, in network-major order.
    pub fn device_ids(&self) -> Vec<DeviceId> {
        (0..self.networks)
            .flat_map(|n| (0..self.devices_per_network).map(move |j| Self::device_id(n, j)))
            .collect()
    }

    /// All network addresses the spec generates, empty networks included.
    ///
    /// Saturates instead of overflowing on absurd totals so the accessor
    /// stays panic-free on unvalidated specs; [`validate`](Self::validate)
    /// rejects such specs with [`SpecError::TooManyNetworks`].
    pub fn network_addrs(&self) -> Vec<AggregatorAddr> {
        (0..self.total_networks()).map(Self::network_addr).collect()
    }

    /// `networks + empty_networks`, saturating at the addressable maximum
    /// (`network_addr` maps index `i` to address `i + 1`, so the last
    /// representable index is `u32::MAX - 1`).
    fn total_networks(&self) -> u32 {
        self.networks
            .saturating_add(self.empty_networks)
            .min(u32::MAX - 1)
    }

    /// Checks the spec for inconsistencies, returning the first found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.networks == 0 {
            return Err(SpecError::NoNetworks);
        }
        if self.devices_per_network == 0 {
            return Err(SpecError::NoDevices);
        }
        if self
            .networks
            .checked_add(self.empty_networks)
            .map_or(true, |total| total > u32::MAX - 1)
        {
            return Err(SpecError::TooManyNetworks {
                networks: self.networks,
                empty_networks: self.empty_networks,
            });
        }
        if self.networks > 1 && self.devices_per_network > rtem_core::scenario::DEVICE_ID_BLOCK {
            return Err(SpecError::TooManyDevicesPerNetwork {
                devices_per_network: self.devices_per_network,
                limit: rtem_core::scenario::DEVICE_ID_BLOCK,
            });
        }
        if self.horizon.is_zero() {
            return Err(SpecError::ZeroHorizon);
        }
        if self.t_measure.is_zero() {
            return Err(SpecError::ZeroMeasureInterval);
        }
        if self.verification_window.is_zero() {
            return Err(SpecError::ZeroVerificationWindow);
        }
        if self.shards == 0 {
            return Err(SpecError::ZeroShards);
        }
        let devices = self.device_ids();
        let networks = self.network_addrs();
        let horizon = SimTime::ZERO + self.horizon;
        for event in &self.script {
            if !devices.contains(&event.device()) {
                return Err(SpecError::UnknownScriptDevice {
                    device: event.device(),
                });
            }
            let target = match *event {
                ScriptEvent::PlugIn { network, .. } => Some(network),
                ScriptEvent::RemoveDevice { home, .. } => Some(home),
                ScriptEvent::Unplug { .. } => None,
            };
            if let Some(network) = target {
                if !networks.contains(&network) {
                    return Err(SpecError::UnknownScriptNetwork { network });
                }
            }
            // World::run_until still executes events scheduled exactly at
            // the horizon, so only strictly-later events are unreachable.
            if event.at() > horizon {
                return Err(SpecError::ScriptEventAfterHorizon { at: event.at() });
            }
        }
        self.fault_plan
            .validate(&devices, &networks, horizon)
            .map_err(SpecError::InvalidFaultPlan)?;
        self.control_plan
            .validate(&devices, &networks, horizon)
            .map_err(SpecError::InvalidControlPlan)?;
        self.tariff.validate().map_err(SpecError::InvalidTariff)?;
        if let Some(workload) = &self.workload {
            workload.validate().map_err(SpecError::InvalidWorkload)?;
        }
        if self.telemetry.is_some_and(|config| !config.is_valid()) {
            return Err(SpecError::InvalidTelemetry);
        }
        Ok(())
    }

    /// Lowers the spec onto the substrate-level builder. Internal to the
    /// facade; external callers go through
    /// [`Experiment`](crate::experiment::Experiment).
    pub(crate) fn to_builder(&self) -> ScenarioBuilder {
        ScenarioBuilder {
            networks: self.networks,
            devices_per_network: self.devices_per_network,
            load: self.load,
            workload: self.workload.clone(),
            meter_kinds: self.meter_kinds.clone(),
            world: WorldConfig {
                t_measure: self.t_measure,
                upstream_sample_interval: self.upstream_sample_interval,
                verification_window: self.verification_window,
                wifi: self.wifi,
                backhaul: self.backhaul,
                tariff: self.tariff.clone(),
                seed: self.seed,
                retention: self.retention,
                shards: self.shards.max(1),
            },
            handshake: self.handshake,
            sensor: self.sensor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_is_valid() {
        assert_eq!(ScenarioSpec::paper_testbed(1).validate(), Ok(()));
    }

    #[test]
    fn zero_shapes_are_rejected_with_typed_errors() {
        let spec = ScenarioSpec::paper_testbed(1).with_networks(0);
        assert_eq!(spec.validate(), Err(SpecError::NoNetworks));
        let spec = ScenarioSpec::paper_testbed(1).with_devices_per_network(0);
        assert_eq!(spec.validate(), Err(SpecError::NoDevices));
        let spec = ScenarioSpec::paper_testbed(1).with_horizon(SimDuration::ZERO);
        assert_eq!(spec.validate(), Err(SpecError::ZeroHorizon));
    }

    #[test]
    fn absurd_network_totals_are_rejected_not_overflowed() {
        let spec = ScenarioSpec::paper_testbed(1)
            .with_networks(u32::MAX)
            .with_empty_networks(2);
        // Validation reports the would-be overflow as a typed error (and
        // runs before any address enumeration, so nothing wraps or panics).
        assert_eq!(
            spec.validate(),
            Err(SpecError::TooManyNetworks {
                networks: u32::MAX,
                empty_networks: 2
            })
        );
        // The boundary: a total of u32::MAX is already unaddressable
        // (network_addr maps index i to address i + 1).
        let spec = ScenarioSpec::paper_testbed(1)
            .with_networks(u32::MAX - 2)
            .with_empty_networks(2);
        assert!(matches!(
            spec.validate(),
            Err(SpecError::TooManyNetworks { .. })
        ));
    }

    #[test]
    fn colliding_device_ids_are_rejected() {
        // device_id(0, 100) == device_id(1, 0): more than one id block per
        // network collides as soon as a second network exists.
        let spec = ScenarioSpec::paper_testbed(1).with_devices_per_network(101);
        assert_eq!(
            spec.validate(),
            Err(SpecError::TooManyDevicesPerNetwork {
                devices_per_network: 101,
                limit: 100
            })
        );
        // A single network cannot collide with anything.
        let spec = ScenarioSpec::single_network(500, 1);
        assert_eq!(spec.validate(), Ok(()));
        // The block boundary itself is fine.
        let spec = ScenarioSpec::paper_testbed(1).with_devices_per_network(100);
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn script_targets_are_checked() {
        let spec = ScenarioSpec::paper_testbed(1).unplug_at(SimTime::from_secs(1), DeviceId(9999));
        assert_eq!(
            spec.validate(),
            Err(SpecError::UnknownScriptDevice {
                device: DeviceId(9999)
            })
        );
        let spec = ScenarioSpec::paper_testbed(1).plug_in_at(
            SimTime::from_secs(1),
            ScenarioSpec::device_id(0, 0),
            AggregatorAddr(77),
        );
        assert_eq!(
            spec.validate(),
            Err(SpecError::UnknownScriptNetwork {
                network: AggregatorAddr(77)
            })
        );
        let spec = ScenarioSpec::paper_testbed(1)
            .unplug_at(SimTime::from_secs(500), ScenarioSpec::device_id(0, 0));
        assert!(matches!(
            spec.validate(),
            Err(SpecError::ScriptEventAfterHorizon { .. })
        ));
    }

    #[test]
    fn fault_plan_targets_are_checked() {
        let plan = FaultPlan::new().sensor_stuck_at(SimTime::from_secs(1), DeviceId(4242), 10.0);
        let spec = ScenarioSpec::paper_testbed(1).with_fault_plan(plan);
        assert_eq!(
            spec.validate(),
            Err(SpecError::InvalidFaultPlan(FaultPlanError::UnknownDevice {
                device: DeviceId(4242)
            }))
        );
        // A valid plan against the generated population passes.
        let plan = FaultPlan::new()
            .sensor_stuck_at(SimTime::from_secs(1), ScenarioSpec::device_id(0, 0), 10.0)
            .tamper_at(SimTime::from_secs(2), ScenarioSpec::network_addr(1));
        let spec = ScenarioSpec::paper_testbed(1).with_fault_plan(plan);
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn control_plan_targets_are_checked() {
        use rtem_control::CommandTarget;
        let plan = ControlPlan::new()
            .stop_reporting(SimTime::from_secs(1), CommandTarget::Device(DeviceId(4242)));
        let spec = ScenarioSpec::paper_testbed(1).with_control_plan(plan);
        assert_eq!(
            spec.validate(),
            Err(SpecError::InvalidControlPlan(ControlError::UnknownDevice {
                device: DeviceId(4242)
            }))
        );
        // A valid plan against the generated population passes.
        let plan = ControlPlan::new()
            .set_measure_interval(
                SimTime::from_secs(1),
                CommandTarget::AllDevices,
                SimDuration::from_millis(500),
            )
            .stop_reporting(
                SimTime::from_secs(2),
                CommandTarget::Device(ScenarioSpec::device_id(0, 0)),
            );
        let spec = ScenarioSpec::paper_testbed(1).with_control_plan(plan);
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn invalid_tariffs_are_rejected_with_typed_errors() {
        use rtem_aggregator::billing::TouWindow;
        let overlapping = Tariff::TimeOfUse {
            windows: vec![
                TouWindow::new(6 * 3600, 12 * 3600, 2.0),
                TouWindow::new(10 * 3600, 14 * 3600, 3.0),
            ],
            off_window_price_per_mwh: 1.0,
        };
        let spec = ScenarioSpec::paper_testbed(1).with_tariff(overlapping);
        assert_eq!(
            spec.validate(),
            Err(SpecError::InvalidTariff(
                TariffError::OverlappingTouWindows {
                    first: 0,
                    second: 1
                }
            ))
        );
        let spec = ScenarioSpec::paper_testbed(1).with_tariff(Tariff::Tiered { tiers: Vec::new() });
        assert_eq!(
            spec.validate(),
            Err(SpecError::InvalidTariff(TariffError::EmptyTierLadder))
        );
        let spec = ScenarioSpec::paper_testbed(1).with_tariff(Tariff::flat(-0.5));
        assert_eq!(
            spec.validate(),
            Err(SpecError::InvalidTariff(TariffError::NegativeRate {
                rate: -0.5
            }))
        );
        // A valid tariff passes through.
        let spec = ScenarioSpec::paper_testbed(1).with_tariff(Tariff::evening_peak(1.0));
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn invalid_workloads_are_rejected_with_typed_errors() {
        let spec = ScenarioSpec::paper_testbed(1).with_workload(WorkloadModel::Mix(Vec::new()));
        assert_eq!(
            spec.validate(),
            Err(SpecError::InvalidWorkload(WorkloadError::EmptyMix))
        );
        let spec = ScenarioSpec::paper_testbed(1).with_workload(WorkloadModel::EvFleet {
            chargers: 0,
            sessions_per_day: 4.0,
            session_cc_ma: 2000.0,
            session_cc_s: 3600,
            session_taper_s: 600,
        });
        assert_eq!(
            spec.validate(),
            Err(SpecError::InvalidWorkload(WorkloadError::ZeroChargers))
        );
        let spec = ScenarioSpec::paper_testbed(1).with_workload(WorkloadModel::neighborhood());
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn generated_ids_are_stable() {
        let spec = ScenarioSpec::paper_testbed(3);
        assert_eq!(spec.device_ids().len(), 4);
        assert_eq!(spec.network_addrs().len(), 2);
        assert_eq!(spec.network_addrs()[0], AggregatorAddr(1));
    }
}
