//! # rtem — the unified facade over the decentralized metering workspace
//!
//! This workspace reproduces *Real-Time Energy Monitoring in IoT-enabled
//! Mobile Devices* (Shivaraman et al., DATE 2020, arXiv:2004.14804) as a
//! deterministic simulation. The substrate lives in eight crates
//! (`rtem-sim`, `rtem-net`, `rtem-sensors`, `rtem-chain`, `rtem-codecs`,
//! `rtem-device`, `rtem-aggregator`, `rtem-core`); **this crate is the
//! supported public surface over all of them**:
//!
//! * [`spec`] — the declarative [`ScenarioSpec`](spec::ScenarioSpec):
//!   networks, devices per network, load, link quality, seed, horizon and
//!   scripted topology changes in one validated value.
//! * [`experiment`] — the [`Experiment`](experiment::Experiment) runner that
//!   owns the build → run → collect loop.
//! * [`runner`] — the [`RunHandle`](runner::RunHandle) returned by
//!   [`Experiment::start`](experiment::Experiment::start): incremental
//!   stepping (`step_window` / `run_to`), live
//!   [`progress`](runner::RunHandle::progress) snapshots and observer
//!   dispatch while the world advances.
//! * [`probe`] — the [`Probe`](probe::Probe) observer trait (callbacks on
//!   sealed block, handshake completion, plug/unplug, anomaly) and the
//!   ready-made [`RecordingProbe`](probe::RecordingProbe).
//! * [`suite`] — the [`Suite`](suite::Suite): declarative sweeps (axes over
//!   seeds, devices, links, sensors, fault plans) executed on a thread pool
//!   into a [`SuiteReport`](suite::SuiteReport) with cross-cell aggregates.
//! * [`faults`] — the fault-injection subsystem: a declarative
//!   [`FaultPlan`](faults::FaultPlan) over seven fault families (sensor,
//!   tamper, link, crash, outage, byzantine, telegram corruption) and the
//!   [`ResilienceReport`](faults::ResilienceReport) accounting of injected
//!   vs. detected faults, detection latency and accuracy-under-fault.
//! * [`control`] — the fleet-command subsystem: a declarative
//!   [`ControlPlan`](control::ControlPlan) of timed commands (Tmeasure,
//!   tariff hints, meter protocols, reporting mute/resume, crash-recovery
//!   config) published over the simulated MQTT broker with QoS 1/2 and
//!   retained delivery, and the [`ControlReport`](control::ControlReport)
//!   accounting of rollout completion and latency.
//! * [`report`] — the [`RunReport`](report::RunReport) bundling world
//!   metrics, Fig. 5 accuracy windows, Thandshake statistics, ledger audit
//!   summaries and consolidated bills.
//! * [`telemetry`] — the observability subsystem: a typed
//!   [`MetricsRegistry`](telemetry::MetricsRegistry) sampled on a
//!   deterministic sim-time grid into
//!   [`MetricsSnapshot`](telemetry::MetricsSnapshot)s, Chrome trace-event
//!   export of the scheduler and notification streams, and a wall-clock
//!   dispatch profiler — enabled per run via
//!   [`ScenarioSpec::with_telemetry`](spec::ScenarioSpec::with_telemetry)
//!   and returned as the
//!   [`TelemetryReport`](telemetry::TelemetryReport) in
//!   [`RunReport::telemetry`](report::RunReport::telemetry). Strictly
//!   observational: simulation results are bit-identical with it on or off.
//! * [`prelude`] — the curated one-line import.
//!
//! The substrate remains reachable under stable module paths
//! (`rtem::simulation::World`, `rtem::chain::audit`, `rtem::net::packet`,
//! …) for drill-down, but new code should start from the spec:
//!
//! ```
//! use rtem::prelude::*;
//!
//! let spec = ScenarioSpec::paper_testbed(42).with_horizon(SimDuration::from_secs(30));
//! let report = Experiment::new(spec).run().unwrap();
//! assert_eq!(report.metrics.networks.len(), 2);
//! assert!(report.all_ledgers_clean());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod control;
pub mod experiment;
pub mod faults;
pub mod probe;
pub mod report;
pub mod runner;
pub mod spec;
pub mod suite;

// Stable module paths into the composed architecture (rtem-core).
pub use rtem_core::{centralized, consensus, loadbalance, metrics, mobility, scenario, simulation};

// Stable module paths into the substrate crates.
pub use rtem_aggregator as aggregator;
pub use rtem_chain as chain;
pub use rtem_codecs as codecs;
pub use rtem_device as device;
pub use rtem_net as net;
pub use rtem_sensors as sensors;
pub use rtem_sim as sim;
pub use rtem_telemetry as telemetry;
pub use rtem_workloads as workloads;

/// Convenient glob-import of the curated facade surface.
///
/// Brings in the facade types (spec / experiment / report), the identifiers
/// and time types every experiment touches, and the most commonly inspected
/// metric types. Substrate detail stays behind the module re-exports
/// (`rtem::chain`, `rtem::net`, …).
pub mod prelude {
    pub use crate::control::{
        CommandRecord, CommandTarget, ControlError, ControlEvent, ControlPlan, ControlReport,
        FleetCommand, TariffHint,
    };
    pub use crate::experiment::Experiment;
    pub use crate::faults::{
        CorruptionMode, DetectionSignal, FamilyResilience, FaultEvent, FaultFamily, FaultPlan,
        FaultPlanError, FaultRecord, LinkTarget, ResilienceReport, SensorFault, SensorFaultKind,
    };
    pub use crate::probe::{NullProbe, Probe, RecordingProbe, RunEvent};
    pub use crate::report::{BillLine, LedgerSummary, NetworkAccuracy, RunReport};
    pub use crate::runner::{NetworkProgress, RunHandle, RunProgress};
    pub use crate::spec::{ScenarioSpec, ScriptEvent, SpecError};
    pub use crate::suite::{
        AggregateStats, CellKey, Suite, SuiteAggregates, SuiteCell, SuiteConfig, SuiteReport,
    };
    pub use rtem_aggregator::aggregator::RetentionPolicy;
    pub use rtem_aggregator::billing::{CostBreakdown, Tariff, TariffError, TierRate, TouWindow};
    pub use rtem_codecs::{CodecError, MeterKind, Telegram};
    pub use rtem_core::metrics::{
        AccuracyWindow, DeviceTrace, HandshakeStats, NetworkSummary, WorldMetrics,
    };
    pub use rtem_core::mobility::{
        run_mobility, thandshake_statistics, MobilityConfig, MobilityOutcome,
    };
    pub use rtem_core::scenario::DeviceLoad;
    pub use rtem_core::simulation::World;
    pub use rtem_net::broker::QoS;
    pub use rtem_net::packet::{AggregatorAddr, DeviceId, MembershipKind};
    pub use rtem_sensors::energy::{MilliampSeconds, Milliamps, Millivolts, MilliwattHours};
    pub use rtem_sim::rng::SimRng;
    pub use rtem_sim::time::{SimDuration, SimTime};
    pub use rtem_telemetry::{
        MetricId, MetricsSnapshot, TelemetryConfig, TelemetryReport, TraceLog,
    };
    pub use rtem_workloads::{WorkloadError, WorkloadModel};
}
