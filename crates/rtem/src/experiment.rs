//! The [`Experiment`] runner: spec in, [`RunReport`] out.

use crate::control::build_control;
use crate::faults::{build_resilience, FaultPlan};
use crate::probe::{NullProbe, Probe};
use crate::report::{BillLine, LedgerSummary, NetworkAccuracy, RunReport};
use crate::runner::RunHandle;
use crate::spec::{ScenarioSpec, ScriptEvent, SpecError};
use rtem_chain::audit::audit_chain;
use rtem_core::metrics::{accuracy_windows, WorldMetrics};
use rtem_core::scenario::NETWORK_SPACING_M;
use rtem_core::simulation::World;
use rtem_sim::time::SimTime;

/// Owns the build → run → collect loop of one metering experiment.
///
/// ```
/// use rtem::prelude::*;
///
/// let spec = ScenarioSpec::paper_testbed(42).with_horizon(SimDuration::from_secs(30));
/// let report = Experiment::new(spec).run().unwrap();
/// assert!(report.all_ledgers_clean());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    spec: ScenarioSpec,
}

impl Experiment {
    /// Wraps a spec. Validation happens in [`run`](Experiment::run) /
    /// [`build_world`](Experiment::build_world) so an invalid spec is still
    /// inspectable.
    pub fn new(spec: ScenarioSpec) -> Experiment {
        Experiment { spec }
    }

    /// The spec the experiment will run.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Validates the spec and builds the initial world, with every scripted
    /// topology change already scheduled. Useful when a caller needs to
    /// interleave custom logic with the run; most callers use
    /// [`run`](Experiment::run).
    pub fn build_world(&self) -> Result<World, SpecError> {
        self.spec.validate()?;
        let mut world = self.spec.to_builder().build();
        // Networks the spec declares as initially empty: same spacing as the
        // populated ones, appended after them.
        for i in self.spec.networks..self.spec.networks + self.spec.empty_networks {
            world.add_network(
                ScenarioSpec::network_addr(i),
                rtem_net::rssi::Position::new(NETWORK_SPACING_M * f64::from(i), 0.0),
            );
        }
        for event in &self.spec.script {
            match *event {
                ScriptEvent::PlugIn {
                    at,
                    device,
                    network,
                } => {
                    world.schedule_plug_in(at, device, network);
                }
                ScriptEvent::Unplug { at, device } => {
                    world.schedule_unplug(at, device);
                }
                ScriptEvent::RemoveDevice { at, device, home } => {
                    world.schedule_remove_device(at, device, home);
                }
            }
        }
        for event in &self.spec.fault_plan.events {
            world.schedule_fault(*event);
        }
        for event in &self.spec.control_plan.events {
            world.schedule_control(*event);
        }
        if let Some(config) = self.spec.telemetry {
            world.enable_telemetry(config);
        }
        Ok(world)
    }

    /// Builds the world and returns a [`RunHandle`] that advances it
    /// incrementally — the streaming counterpart of [`run`](Experiment::run).
    pub fn start(self) -> Result<RunHandle, SpecError> {
        self.start_probed(NullProbe)
    }

    /// Like [`start`](Experiment::start), but attaches a
    /// [`Probe`] that receives a callback for every
    /// milestone (sealed block, handshake, plug/unplug, anomaly) as the run
    /// advances.
    pub fn start_probed<P: Probe>(self, probe: P) -> Result<RunHandle<P>, SpecError> {
        let world = self.build_world()?;
        Ok(RunHandle::new(self.spec, world, probe))
    }

    /// Builds the world, runs it to the spec's horizon and collects the
    /// report. Equivalent to `start()?.finish()`.
    pub fn run(self) -> Result<RunReport, SpecError> {
        Ok(self.start()?.finish())
    }

    /// Like [`run`](Experiment::run), but with the clean twin's mean
    /// overhead already known, so the resilience accounting skips its own
    /// baseline simulation. Used by [`Suite`](crate::suite::Suite), which
    /// computes each distinct baseline once per grid instead of once per
    /// cell.
    pub(crate) fn run_with_clean_baseline(
        self,
        baseline: Option<f64>,
    ) -> Result<RunReport, SpecError> {
        let mut handle = self.start()?;
        handle.set_clean_baseline(baseline);
        Ok(handle.finish())
    }
}

/// `clean_baseline`: `None` means "simulate the clean twin here"; `Some(x)`
/// is a precomputed twin mean overhead (possibly itself `None` when the twin
/// had no settled window).
pub(crate) fn collect_report(
    spec: &ScenarioSpec,
    mut world: World,
    horizon: SimTime,
    clean_baseline: Option<Option<f64>>,
) -> RunReport {
    // Tear down telemetry first so the final snapshot is stamped at the
    // horizon, before the world is frozen into the report.
    let telemetry = world.take_telemetry(horizon);
    let metrics = WorldMetrics::collect(&world);
    let handshakes = metrics.handshake_stats();
    let faulted = !spec.fault_plan.is_empty();

    let mut accuracy = Vec::new();
    let mut ledgers = Vec::new();
    let mut bills = Vec::new();
    let mut audit_findings = Vec::new();
    for addr in world.network_addresses() {
        accuracy.push(NetworkAccuracy {
            network: addr,
            windows: accuracy_windows(&world, addr, spec.verification_window, horizon),
        });
        let Some(aggregator) = world.aggregator(addr) else {
            continue;
        };
        let audit = audit_chain(
            aggregator.ledger().chain(),
            Some(aggregator.ledger_anchor()),
        );
        ledgers.push(LedgerSummary {
            network: addr,
            blocks: aggregator.ledger().chain().len(),
            entries: aggregator.ledger().chain().total_records(),
            audit_clean: audit.is_clean(),
            first_bad_block: audit.first_bad_block(),
            accounts_match_chain: aggregator.ledger().accounts_match_chain(),
        });
        if faulted {
            audit_findings.extend(audit.findings.iter().map(|f| (addr, *f)));
        }
        for (device, bill) in aggregator.billing().iter() {
            bills.push(BillLine {
                network: addr,
                device,
                charge_uas: bill.charge_uas,
                roaming_charge_uas: bill.roaming_charge_uas,
                records: bill.records,
                backfilled_records: bill.backfilled_records,
                cost: bill.cost,
                breakdown: bill.breakdown,
                peak_demand_ma: bill.peak_demand_ma,
            });
        }
    }

    let control = (!spec.control_plan.is_empty()).then(|| build_control(world.command_records()));
    let mut report = RunReport {
        metrics,
        accuracy,
        handshakes,
        ledgers,
        bills,
        resilience: None,
        control,
        telemetry,
        world,
    };
    if faulted {
        // The accuracy-under-fault delta needs a clean twin: the identical
        // spec minus the fault plan. Simulated here unless the caller (a
        // Suite sharing one baseline across cells) already ran it. The twin
        // does not collect telemetry — its report is discarded anyway.
        let clean_overhead = match clean_baseline {
            Some(precomputed) => precomputed,
            None => {
                let mut twin = spec.clone().with_fault_plan(FaultPlan::new());
                twin.telemetry = None;
                Experiment::new(twin)
                    .run()
                    .expect("a spec that validated with its plan validates without it")
                    .mean_overhead_percent()
            }
        };
        report.resilience = Some(build_resilience(
            report.world.fault_records(),
            &spec.fault_plan.events,
            &audit_findings,
            report.mean_overhead_percent(),
            clean_overhead,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimDuration;

    #[test]
    fn invalid_spec_is_rejected_before_building() {
        let spec = ScenarioSpec::paper_testbed(1).with_networks(0);
        assert_eq!(
            Experiment::new(spec).run().unwrap_err(),
            SpecError::NoNetworks
        );
    }

    #[test]
    fn short_run_produces_a_complete_report() {
        let spec = ScenarioSpec::paper_testbed(77).with_horizon(SimDuration::from_secs(25));
        let report = Experiment::new(spec).run().unwrap();
        assert_eq!(report.metrics.networks.len(), 2);
        assert_eq!(report.accuracy.len(), 2);
        assert_eq!(report.ledgers.len(), 2);
        assert!(report.handshakes.is_some(), "handshakes completed");
        assert!(report.all_ledgers_clean());
        assert!(!report.bills.is_empty(), "devices were billed");
        assert_eq!(report.world().device_ids().len(), 4);
    }

    #[test]
    fn scripted_events_are_applied() {
        let mobile = ScenarioSpec::device_id(0, 0);
        let spec = ScenarioSpec::paper_testbed(78)
            .with_horizon(SimDuration::from_secs(70))
            .unplug_at(SimTime::from_secs(25), mobile)
            .plug_in_at(
                SimTime::from_secs(35),
                mobile,
                ScenarioSpec::network_addr(1),
            );
        let report = Experiment::new(spec).run().unwrap();
        assert_eq!(
            report.world().device_network(mobile),
            Some(ScenarioSpec::network_addr(1)),
            "the scripted move must have happened"
        );
    }
}
