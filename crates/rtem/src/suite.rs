//! Declarative scenario sweeps executed on a worker pool: the [`Suite`].
//!
//! A suite takes one base [`ScenarioSpec`] and a set of axes — seeds,
//! devices per network, link configurations, sensor models — and runs the
//! cartesian grid of specs on a `std::thread` pool, one experiment per
//! cell. The resulting [`SuiteReport`] keeps every cell's
//! [`RunReport`] (in grid order, independent of
//! the thread count) plus cross-cell aggregates.
//!
//! ```
//! use rtem::prelude::*;
//!
//! let base = ScenarioSpec::paper_testbed(0).with_horizon(SimDuration::from_secs(20));
//! let report = Suite::new(base)
//!     .over_seeds([1, 2])
//!     .over_devices_per_network([1, 2])
//!     .with_threads(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.cells.len(), 4);
//! assert!(report.aggregates.cell_runtime_s.count == 4);
//! ```

use crate::control::ControlPlan;
use crate::experiment::Experiment;
use crate::faults::FaultPlan;
use crate::report::RunReport;
use crate::spec::{ScenarioSpec, SpecError};
use core::fmt;
use rtem_aggregator::billing::Tariff;
use rtem_codecs::MeterKind;
use rtem_net::link::LinkConfig;
use rtem_sensors::ina219::Ina219Config;
use rtem_workloads::WorkloadModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A declarative sweep: one base spec, up to nine axes, a worker pool.
///
/// Axes left unset contribute the base spec's value as a single grid point.
/// Cells are enumerated in a fixed order (seed-major, then devices, then
/// link, then sensor, then workload, then meter kinds, then tariff, then
/// fault plan, then control plan), and the report lists them in that order
/// regardless of how many threads executed them.
///
/// # Examples
///
/// ```
/// use rtem::prelude::*;
///
/// let base = ScenarioSpec::paper_testbed(0).with_horizon(SimDuration::from_secs(15));
/// let report = Suite::new(base)
///     .over_seeds([7, 8, 9])
///     .with_threads(3)
///     .run()
///     .unwrap();
/// assert_eq!(report.cells.len(), 3);
/// assert_eq!(report.cells[1].key.seed, 8, "grid order is fixed");
/// ```
#[derive(Debug, Clone)]
pub struct Suite {
    base: ScenarioSpec,
    seeds: Vec<u64>,
    devices_per_network: Vec<u32>,
    links: Vec<(String, LinkConfig, LinkConfig)>,
    sensors: Vec<(String, Ina219Config)>,
    workloads: Vec<(String, WorkloadModel)>,
    meter_kinds: Vec<(String, Vec<MeterKind>)>,
    tariffs: Vec<(String, Tariff)>,
    fault_plans: Vec<(String, FaultPlan)>,
    control_plans: Vec<(String, ControlPlan)>,
    threads: Option<usize>,
    config: SuiteConfig,
}

/// Knobs for *how* a [`Suite`] executes, never for *what* it computes: every
/// report field is bit-identical whatever the configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuiteConfig {
    /// When `true`, the pool logs each cell's start and finish (with its
    /// wall time) to stderr while the sweep runs — progress visibility for
    /// long grids. Purely diagnostic.
    pub verbose: bool,
}

/// Coordinates of one cell in a suite's grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellKey {
    /// Position in the grid's enumeration order.
    pub index: usize,
    /// The cell's seed.
    pub seed: u64,
    /// The cell's devices-per-network count.
    pub devices_per_network: u32,
    /// Label of the cell's link configuration, if the axis was swept.
    pub link: Option<String>,
    /// Label of the cell's sensor model, if the axis was swept.
    pub sensor: Option<String>,
    /// Label of the cell's workload model, if the axis was swept.
    pub workload: Option<String>,
    /// Label of the cell's meter-protocol mix, if the axis was swept.
    pub meter_kinds: Option<String>,
    /// Label of the cell's tariff, if the axis was swept.
    pub tariff: Option<String>,
    /// Label of the cell's fault plan, if the axis was swept.
    pub fault_plan: Option<String>,
    /// Label of the cell's control plan, if the axis was swept.
    pub control_plan: Option<String>,
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={} devices={}", self.seed, self.devices_per_network)?;
        if let Some(link) = &self.link {
            write!(f, " link={link}")?;
        }
        if let Some(sensor) = &self.sensor {
            write!(f, " sensor={sensor}")?;
        }
        if let Some(workload) = &self.workload {
            write!(f, " workload={workload}")?;
        }
        if let Some(meter_kinds) = &self.meter_kinds {
            write!(f, " meters={meter_kinds}")?;
        }
        if let Some(tariff) = &self.tariff {
            write!(f, " tariff={tariff}")?;
        }
        if let Some(fault_plan) = &self.fault_plan {
            write!(f, " faults={fault_plan}")?;
        }
        if let Some(control_plan) = &self.control_plan {
            write!(f, " control={control_plan}")?;
        }
        Ok(())
    }
}

/// One executed cell of a suite.
#[derive(Debug)]
pub struct SuiteCell {
    /// Where the cell sits in the grid.
    pub key: CellKey,
    /// The exact spec the cell ran.
    pub spec: ScenarioSpec,
    /// The cell's full run report.
    pub report: RunReport,
    /// Wall-clock time the cell's experiment took.
    pub wall: Duration,
}

/// Summary statistics over one cross-cell quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateStats {
    /// Number of samples aggregated.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl AggregateStats {
    /// Computes the statistics over `values`; `None` when empty.
    pub fn from_values(values: &[f64]) -> Option<AggregateStats> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let count = sorted.len();
        let rank = ((count as f64 * 0.95).ceil() as usize).clamp(1, count);
        Some(AggregateStats {
            count,
            mean: sorted.iter().sum::<f64>() / count as f64,
            min: sorted[0],
            max: sorted[count - 1],
            p95: sorted[rank - 1],
        })
    }
}

/// Cross-cell aggregates of a suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteAggregates {
    /// Fig. 5 accuracy overhead (percent) over every settled verification
    /// window of every cell; `None` when no window settled.
    pub accuracy_overhead_percent: Option<AggregateStats>,
    /// Thandshake (seconds) over every completed handshake of every cell;
    /// `None` when no handshake completed.
    pub handshake_latency_s: Option<AggregateStats>,
    /// Fault detection rate over the cells that injected faults; `None`
    /// when no cell carried a fault plan.
    pub fault_detection_rate: Option<AggregateStats>,
    /// Wall-clock runtime (seconds) of the individual cells.
    pub cell_runtime_s: AggregateStats,
    /// Scheduler events dispatched per cell (read from each cell's final
    /// telemetry snapshot), over the cells that enabled telemetry; `None`
    /// when no cell collected telemetry.
    pub telemetry_events_dispatched: Option<AggregateStats>,
}

/// Everything a suite run produced.
#[derive(Debug)]
pub struct SuiteReport {
    /// One entry per grid cell, in grid-enumeration order.
    pub cells: Vec<SuiteCell>,
    /// Worker threads actually used.
    pub threads_used: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Cross-cell aggregates.
    pub aggregates: SuiteAggregates,
}

impl SuiteReport {
    /// The cell at `index` in grid order.
    pub fn cell(&self, index: usize) -> Option<&SuiteCell> {
        self.cells.get(index)
    }

    /// Iterates the cells with a given seed.
    pub fn cells_with_seed(&self, seed: u64) -> impl Iterator<Item = &SuiteCell> {
        self.cells.iter().filter(move |c| c.key.seed == seed)
    }
}

impl Suite {
    /// Starts a suite from a base spec. With no axes set, the suite has one
    /// cell: the base spec itself.
    pub fn new(base: ScenarioSpec) -> Suite {
        Suite {
            base,
            seeds: Vec::new(),
            devices_per_network: Vec::new(),
            links: Vec::new(),
            sensors: Vec::new(),
            workloads: Vec::new(),
            meter_kinds: Vec::new(),
            tariffs: Vec::new(),
            fault_plans: Vec::new(),
            control_plans: Vec::new(),
            threads: None,
            config: SuiteConfig::default(),
        }
    }

    /// Sweeps the seed axis.
    pub fn over_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Suite {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sweeps the devices-per-network axis.
    pub fn over_devices_per_network(mut self, devices: impl IntoIterator<Item = u32>) -> Suite {
        self.devices_per_network = devices.into_iter().collect();
        self
    }

    /// Sweeps the link-quality axis: labelled `(wifi, backhaul)` pairs.
    pub fn over_links(
        mut self,
        links: impl IntoIterator<Item = (impl Into<String>, LinkConfig, LinkConfig)>,
    ) -> Suite {
        self.links = links
            .into_iter()
            .map(|(label, wifi, backhaul)| (label.into(), wifi, backhaul))
            .collect();
        self
    }

    /// Sweeps the sensor-model axis: labelled [`Ina219Config`]s.
    pub fn over_sensors(
        mut self,
        sensors: impl IntoIterator<Item = (impl Into<String>, Ina219Config)>,
    ) -> Suite {
        self.sensors = sensors
            .into_iter()
            .map(|(label, sensor)| (label.into(), sensor))
            .collect();
        self
    }

    /// Sweeps the workload axis: labelled [`WorkloadModel`]s. Pass
    /// `(model.label(), model)` pairs or custom labels; each cell's spec
    /// gets the model via
    /// [`with_workload`](ScenarioSpec::with_workload).
    pub fn over_workloads(
        mut self,
        workloads: impl IntoIterator<Item = (impl Into<String>, WorkloadModel)>,
    ) -> Suite {
        self.workloads = workloads
            .into_iter()
            .map(|(label, workload)| (label.into(), workload))
            .collect();
        self
    }

    /// Sweeps the meter-protocol axis: labelled [`MeterKind`] mixes, each
    /// assigned to the fleet round-robin by device ordinal via
    /// [`with_meter_kinds`](ScenarioSpec::with_meter_kinds). An empty mix
    /// labels a cell that keeps the native encoding.
    pub fn over_meter_kinds(
        mut self,
        kinds: impl IntoIterator<Item = (impl Into<String>, Vec<MeterKind>)>,
    ) -> Suite {
        self.meter_kinds = kinds
            .into_iter()
            .map(|(label, kinds)| (label.into(), kinds))
            .collect();
        self
    }

    /// Sweeps the tariff axis: labelled [`Tariff`]s applied to every
    /// aggregator's billing engine.
    pub fn over_tariffs(
        mut self,
        tariffs: impl IntoIterator<Item = (impl Into<String>, Tariff)>,
    ) -> Suite {
        self.tariffs = tariffs
            .into_iter()
            .map(|(label, tariff)| (label.into(), tariff))
            .collect();
        self
    }

    /// Sweeps the fault-plan axis: labelled [`FaultPlan`]s, one resilience
    /// scenario per label. Cells with a non-empty plan produce a
    /// [`ResilienceReport`](crate::faults::ResilienceReport) in their run
    /// report; an empty plan is the usual way to keep a clean baseline cell
    /// in the same grid.
    pub fn over_fault_plans(
        mut self,
        plans: impl IntoIterator<Item = (impl Into<String>, FaultPlan)>,
    ) -> Suite {
        self.fault_plans = plans
            .into_iter()
            .map(|(label, plan)| (label.into(), plan))
            .collect();
        self
    }

    /// Sweeps the control-plan axis: labelled [`ControlPlan`]s, one
    /// fleet-command scenario per label. Cells with a non-empty plan produce
    /// a [`ControlReport`](crate::control::ControlReport) in their run
    /// report; an empty plan is the usual way to keep an uncommanded
    /// baseline cell in the same grid.
    pub fn over_control_plans(
        mut self,
        plans: impl IntoIterator<Item = (impl Into<String>, ControlPlan)>,
    ) -> Suite {
        self.control_plans = plans
            .into_iter()
            .map(|(label, plan)| (label.into(), plan))
            .collect();
        self
    }

    /// Fixes the worker-thread count. Unset, the suite uses the machine's
    /// available parallelism (capped at the cell count).
    pub fn with_threads(mut self, threads: usize) -> Suite {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets the execution knobs ([`SuiteConfig`]). Affects only how the
    /// sweep runs, never the report.
    pub fn with_config(mut self, config: SuiteConfig) -> Suite {
        self.config = config;
        self
    }

    /// Shorthand for toggling [`SuiteConfig::verbose`]: per-cell start /
    /// finish progress lines on stderr.
    pub fn verbose(mut self, verbose: bool) -> Suite {
        self.config.verbose = verbose;
        self
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.seeds.len().max(1)
            * self.devices_per_network.len().max(1)
            * self.links.len().max(1)
            * self.sensors.len().max(1)
            * self.workloads.len().max(1)
            * self.meter_kinds.len().max(1)
            * self.tariffs.len().max(1)
            * self.fault_plans.len().max(1)
            * self.control_plans.len().max(1)
    }

    /// `true` when the grid is degenerate (never: every axis defaults to the
    /// base value, so the grid always has at least one cell).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Enumerates the grid: every cell's key and fully-derived spec, in the
    /// fixed seed-major order the report will use.
    pub fn cells(&self) -> Vec<(CellKey, ScenarioSpec)> {
        let seeds: Vec<u64> = if self.seeds.is_empty() {
            vec![self.base.seed]
        } else {
            self.seeds.clone()
        };
        let devices: Vec<u32> = if self.devices_per_network.is_empty() {
            vec![self.base.devices_per_network]
        } else {
            self.devices_per_network.clone()
        };
        let links: Vec<Option<&(String, LinkConfig, LinkConfig)>> = if self.links.is_empty() {
            vec![None]
        } else {
            self.links.iter().map(Some).collect()
        };
        let sensors: Vec<Option<&(String, Ina219Config)>> = if self.sensors.is_empty() {
            vec![None]
        } else {
            self.sensors.iter().map(Some).collect()
        };
        let workloads: Vec<Option<&(String, WorkloadModel)>> = if self.workloads.is_empty() {
            vec![None]
        } else {
            self.workloads.iter().map(Some).collect()
        };
        let meter_kinds: Vec<Option<&(String, Vec<MeterKind>)>> = if self.meter_kinds.is_empty() {
            vec![None]
        } else {
            self.meter_kinds.iter().map(Some).collect()
        };
        let tariffs: Vec<Option<&(String, Tariff)>> = if self.tariffs.is_empty() {
            vec![None]
        } else {
            self.tariffs.iter().map(Some).collect()
        };
        let fault_plans: Vec<Option<&(String, FaultPlan)>> = if self.fault_plans.is_empty() {
            vec![None]
        } else {
            self.fault_plans.iter().map(Some).collect()
        };
        let control_plans: Vec<Option<&(String, ControlPlan)>> = if self.control_plans.is_empty() {
            vec![None]
        } else {
            self.control_plans.iter().map(Some).collect()
        };

        let mut cells = Vec::with_capacity(self.len());
        for &seed in &seeds {
            for &devices_per_network in &devices {
                for link in &links {
                    for sensor in &sensors {
                        for workload in &workloads {
                            for meter_kind in &meter_kinds {
                                for tariff in &tariffs {
                                    for fault_plan in &fault_plans {
                                        for control_plan in &control_plans {
                                            let mut spec = self
                                                .base
                                                .clone()
                                                .with_seed(seed)
                                                .with_devices_per_network(devices_per_network);
                                            if let Some((_, wifi, backhaul)) = link {
                                                spec = spec.with_links(*wifi, *backhaul);
                                            }
                                            if let Some((_, sensor)) = sensor {
                                                spec = spec.with_sensor(*sensor);
                                            }
                                            if let Some((_, model)) = workload {
                                                spec = spec.with_workload(model.clone());
                                            }
                                            if let Some((_, kinds)) = meter_kind {
                                                spec = spec.with_meter_kinds(kinds.clone());
                                            }
                                            if let Some((_, tariff)) = tariff {
                                                spec = spec.with_tariff(tariff.clone());
                                            }
                                            if let Some((_, plan)) = fault_plan {
                                                spec = spec.with_fault_plan(plan.clone());
                                            }
                                            if let Some((_, plan)) = control_plan {
                                                spec = spec.with_control_plan(plan.clone());
                                            }
                                            cells.push((
                                                CellKey {
                                                    index: cells.len(),
                                                    seed,
                                                    devices_per_network,
                                                    link: link.map(|(label, _, _)| label.clone()),
                                                    sensor: sensor.map(|(label, _)| label.clone()),
                                                    workload: workload
                                                        .map(|(label, _)| label.clone()),
                                                    meter_kinds: meter_kind
                                                        .map(|(label, _)| label.clone()),
                                                    tariff: tariff.map(|(label, _)| label.clone()),
                                                    fault_plan: fault_plan
                                                        .map(|(label, _)| label.clone()),
                                                    control_plan: control_plan
                                                        .map(|(label, _)| label.clone()),
                                                },
                                                spec,
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Validates every cell, then executes the grid on the worker pool and
    /// aggregates the results. Fails fast on the first invalid cell, before
    /// anything runs.
    pub fn run(self) -> Result<SuiteReport, SpecError> {
        let cells = self.cells();
        for (_, spec) in &cells {
            spec.validate()?;
        }
        // Faulted cells need a clean twin for the accuracy-under-fault
        // delta. Cells sweeping only the fault-plan axis share the same
        // twin, so simulate each distinct clean spec once up front instead
        // of once per cell inside the pool.
        let mut baselines: Vec<(ScenarioSpec, Option<f64>)> = Vec::new();
        for (_, spec) in &cells {
            if spec.fault_plan.is_empty() {
                continue;
            }
            let clean = spec.clone().with_fault_plan(FaultPlan::new());
            if !baselines.iter().any(|(s, _)| *s == clean) {
                let overhead = Experiment::new(clean.clone())
                    .run()
                    .expect("cell specs were validated above")
                    .mean_overhead_percent();
                baselines.push((clean, overhead));
            }
        }
        let baselines = &baselines;
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, cells.len().max(1));

        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<(RunReport, Duration)>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some((key, spec)) = cells.get(index) else {
                        break;
                    };
                    if self.config.verbose {
                        eprintln!("[suite] cell {}/{} start: {key}", index + 1, cells.len());
                    }
                    let cell_started = Instant::now();
                    let baseline = (!spec.fault_plan.is_empty()).then(|| {
                        let clean = spec.clone().with_fault_plan(FaultPlan::new());
                        baselines
                            .iter()
                            .find(|(s, _)| *s == clean)
                            .map(|(_, overhead)| *overhead)
                            .expect("baseline precomputed for every faulted cell")
                    });
                    let report = match baseline {
                        Some(overhead) => Experiment::new(spec.clone())
                            .run_with_clean_baseline(overhead)
                            .expect("cell specs were validated before the pool started"),
                        None => Experiment::new(spec.clone())
                            .run()
                            .expect("cell specs were validated before the pool started"),
                    };
                    let cell_wall = cell_started.elapsed();
                    if self.config.verbose {
                        eprintln!(
                            "[suite] cell {}/{} done in {:.3} s: {key}",
                            index + 1,
                            cells.len(),
                            cell_wall.as_secs_f64()
                        );
                    }
                    *slots[index].lock().expect("result slot") = Some((report, cell_wall));
                });
            }
        });
        let wall = started.elapsed();

        let executed: Vec<SuiteCell> = cells
            .into_iter()
            .zip(slots)
            .map(|((key, spec), slot)| {
                let (report, cell_wall) = slot
                    .into_inner()
                    .expect("result slot")
                    .expect("every cell ran to completion");
                SuiteCell {
                    key,
                    spec,
                    report,
                    wall: cell_wall,
                }
            })
            .collect();

        let aggregates = aggregate(&executed);
        Ok(SuiteReport {
            cells: executed,
            threads_used: threads,
            wall,
            aggregates,
        })
    }
}

fn aggregate(cells: &[SuiteCell]) -> SuiteAggregates {
    let mut overheads = Vec::new();
    let mut handshakes = Vec::new();
    let mut detection_rates = Vec::new();
    let mut runtimes = Vec::new();
    let mut dispatched = Vec::new();
    for cell in cells {
        for accuracy in &cell.report.accuracy {
            overheads.extend(accuracy.settled_windows().map(|w| w.overhead_percent()));
        }
        handshakes.extend(
            cell.report
                .metrics
                .handshakes
                .values()
                .map(|b| b.total().as_secs_f64()),
        );
        if let Some(rate) = cell
            .report
            .resilience
            .as_ref()
            .and_then(|r| r.detection_rate())
        {
            detection_rates.push(rate);
        }
        runtimes.push(cell.wall.as_secs_f64());
        if let Some(telemetry) = &cell.report.telemetry {
            let events = telemetry
                .final_snapshot
                .fleet
                .get(rtem_telemetry::MetricId::SchedulerEventsDispatched);
            dispatched.push(events as f64);
        }
    }
    SuiteAggregates {
        accuracy_overhead_percent: AggregateStats::from_values(&overheads),
        handshake_latency_s: AggregateStats::from_values(&handshakes),
        fault_detection_rate: AggregateStats::from_values(&detection_rates),
        cell_runtime_s: AggregateStats::from_values(&runtimes)
            .expect("a suite always has at least one cell"),
        telemetry_events_dispatched: AggregateStats::from_values(&dispatched),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimDuration;

    #[test]
    fn grid_enumeration_is_the_cartesian_product() {
        let suite = Suite::new(ScenarioSpec::paper_testbed(0))
            .over_seeds([10, 20, 30])
            .over_devices_per_network([1, 2])
            .over_sensors([
                ("testbed", Ina219Config::testbed()),
                ("ideal", Ina219Config::ideal()),
            ]);
        assert_eq!(suite.len(), 12);
        let cells = suite.cells();
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].0.seed, 10);
        assert_eq!(cells[0].0.sensor.as_deref(), Some("testbed"));
        assert_eq!(cells[1].0.sensor.as_deref(), Some("ideal"));
        assert!(cells[0].0.link.is_none(), "unswept axis stays unlabeled");
        assert_eq!(cells[11].0.seed, 30);
        assert_eq!(cells[11].0.devices_per_network, 2);
        // Indexes are grid positions.
        for (i, (key, _)) in cells.iter().enumerate() {
            assert_eq!(key.index, i);
        }
    }

    #[test]
    fn axisless_suite_runs_the_base_spec_once() {
        let base = ScenarioSpec::paper_testbed(4).with_horizon(SimDuration::from_secs(12));
        let report = Suite::new(base.clone()).run().unwrap();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].spec, base);
        assert_eq!(report.aggregates.cell_runtime_s.count, 1);
    }

    #[test]
    fn verbose_logging_leaves_the_report_unchanged() {
        let base = ScenarioSpec::paper_testbed(4).with_horizon(SimDuration::from_secs(12));
        let quiet = Suite::new(base.clone()).run().unwrap();
        let verbose = Suite::new(base)
            .with_config(SuiteConfig { verbose: true })
            .run()
            .unwrap();
        assert_eq!(
            format!("{:?}", quiet.cells[0].report.metrics),
            format!("{:?}", verbose.cells[0].report.metrics)
        );
        assert_eq!(
            quiet.aggregates.accuracy_overhead_percent,
            verbose.aggregates.accuracy_overhead_percent
        );
    }

    #[test]
    fn invalid_cells_fail_before_the_pool_starts() {
        let base = ScenarioSpec::paper_testbed(4);
        let err = Suite::new(base)
            .over_devices_per_network([2, 0])
            .run()
            .unwrap_err();
        assert_eq!(err, SpecError::NoDevices);
    }

    #[test]
    fn aggregate_stats_match_hand_computation() {
        let stats = AggregateStats::from_values(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(stats.count, 4);
        assert!((stats.mean - 2.5).abs() < 1e-12);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 4.0);
        assert_eq!(stats.p95, 4.0, "nearest-rank p95 of 4 samples is the max");
        assert!(AggregateStats::from_values(&[]).is_none());
    }

    #[test]
    fn cell_keys_render_their_coordinates() {
        let key = CellKey {
            index: 0,
            seed: 9,
            devices_per_network: 3,
            link: Some("lossy".into()),
            sensor: None,
            workload: Some("residential".into()),
            meter_kinds: Some("mixed".into()),
            tariff: Some("tou-2w".into()),
            fault_plan: Some("tamper-x2".into()),
            control_plan: Some("rollout-50".into()),
        };
        assert_eq!(
            key.to_string(),
            "seed=9 devices=3 link=lossy workload=residential meters=mixed tariff=tou-2w \
             faults=tamper-x2 control=rollout-50"
        );
    }

    #[test]
    fn meter_kind_axis_expands_the_grid() {
        let suite = Suite::new(ScenarioSpec::paper_testbed(0))
            .over_seeds([1, 2])
            .over_meter_kinds([
                ("internal", Vec::new()),
                ("sml", vec![MeterKind::Sml]),
                (
                    "mixed",
                    vec![
                        MeterKind::Iec62056,
                        MeterKind::Sml,
                        MeterKind::ModbusRtu,
                        MeterKind::WirelessMbus,
                    ],
                ),
            ]);
        assert_eq!(suite.len(), 6);
        let cells = suite.cells();
        assert_eq!(cells[0].0.meter_kinds.as_deref(), Some("internal"));
        assert_eq!(cells[1].0.meter_kinds.as_deref(), Some("sml"));
        assert_eq!(cells[2].0.meter_kinds.as_deref(), Some("mixed"));
        assert!(cells[0].1.meter_kinds.is_empty());
        assert_eq!(cells[1].1.meter_kinds, vec![MeterKind::Sml]);
        assert_eq!(cells[2].1.meter_kinds.len(), 4);
    }

    #[test]
    fn workload_and_tariff_axes_expand_the_grid() {
        let suite = Suite::new(ScenarioSpec::paper_testbed(0))
            .over_workloads([
                ("residential", WorkloadModel::residential()),
                ("ev-fleet", WorkloadModel::ev_fleet()),
            ])
            .over_tariffs([
                ("flat", Tariff::flat(1.0)),
                ("tou", Tariff::evening_peak(1.0)),
                ("tiered", Tariff::two_tier(1.0, 100.0)),
            ]);
        assert_eq!(suite.len(), 6);
        let cells = suite.cells();
        assert_eq!(cells[0].0.workload.as_deref(), Some("residential"));
        assert_eq!(cells[0].0.tariff.as_deref(), Some("flat"));
        assert_eq!(cells[1].0.tariff.as_deref(), Some("tou"));
        assert_eq!(cells[3].0.workload.as_deref(), Some("ev-fleet"));
        assert_eq!(
            cells[0].1.workload,
            Some(WorkloadModel::residential()),
            "the cell's spec carries the swept workload"
        );
        assert_eq!(cells[4].1.tariff, Tariff::evening_peak(1.0));
    }

    #[test]
    fn fault_plan_axis_expands_the_grid() {
        use crate::faults::FaultPlan;
        use rtem_net::packet::AggregatorAddr;
        use rtem_sim::time::SimTime;
        let suite = Suite::new(ScenarioSpec::paper_testbed(0))
            .over_seeds([1, 2])
            .over_fault_plans([
                ("clean", FaultPlan::new()),
                (
                    "tamper",
                    FaultPlan::new().tamper_at(SimTime::from_secs(20), AggregatorAddr(1)),
                ),
            ]);
        assert_eq!(suite.len(), 4);
        let cells = suite.cells();
        assert_eq!(cells[0].0.fault_plan.as_deref(), Some("clean"));
        assert_eq!(cells[1].0.fault_plan.as_deref(), Some("tamper"));
        assert!(cells[0].1.fault_plan.is_empty());
        assert_eq!(cells[1].1.fault_plan.len(), 1);
    }

    #[test]
    fn control_plan_axis_expands_the_grid() {
        use crate::control::{CommandTarget, ControlPlan};
        use rtem_sim::time::SimTime;
        let suite = Suite::new(ScenarioSpec::paper_testbed(0))
            .over_seeds([1, 2])
            .over_control_plans([
                ("uncommanded", ControlPlan::new()),
                (
                    "slowdown",
                    ControlPlan::new().set_measure_interval(
                        SimTime::from_secs(20),
                        CommandTarget::AllDevices,
                        SimDuration::from_millis(500),
                    ),
                ),
            ]);
        assert_eq!(suite.len(), 4);
        let cells = suite.cells();
        assert_eq!(cells[0].0.control_plan.as_deref(), Some("uncommanded"));
        assert_eq!(cells[1].0.control_plan.as_deref(), Some("slowdown"));
        assert!(cells[0].1.control_plan.is_empty());
        assert_eq!(cells[1].1.control_plan.len(), 1);
    }
}
