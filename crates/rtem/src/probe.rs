//! Observers for streaming runs.
//!
//! A [`Probe`] receives a callback for every milestone the world emits while
//! a [`RunHandle`](crate::runner::RunHandle) advances it: sealed blocks,
//! anomalous verification windows, completed handshakes, plug-ins and
//! unplugs. Attach one with
//! [`Experiment::start_probed`](crate::experiment::Experiment::start_probed):
//!
//! ```
//! use rtem::prelude::*;
//!
//! let spec = ScenarioSpec::paper_testbed(42).with_horizon(SimDuration::from_secs(30));
//! let handle = Experiment::new(spec).start_probed(RecordingProbe::default()).unwrap();
//! let (report, probe) = handle.finish_probed();
//! assert!(probe.blocks_sealed() > 0);
//! assert!(probe.handshakes_completed() > 0);
//! assert!(report.all_ledgers_clean());
//! ```
//!
//! Every hook has a no-op default, so an implementation only overrides what
//! it cares about. For full-stream consumers, overriding [`Probe::on_event`]
//! alone sees everything.

use std::collections::VecDeque;

use rtem_aggregator::verify::WindowVerdict;
use rtem_core::simulation::WorldNotification;
use rtem_device::network_mgmt::HandshakeBreakdown;
use rtem_faults::event::{DetectionSignal, FaultFamily};
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_sim::time::SimTime;
use rtem_telemetry::MetricsSnapshot;

/// One milestone observed during a run.
///
/// This is the world-level notification re-exported under the facade's
/// vocabulary; see [`WorldNotification`] for the variants.
pub type RunEvent = WorldNotification;

/// Observer of a streaming run.
///
/// All methods default to no-ops. [`on_event`](Probe::on_event) is called
/// once per milestone in deterministic dispatch order and fans out to the
/// typed hooks; override it to intercept the full stream, or override the
/// typed hooks for just the milestones of interest.
pub trait Probe {
    /// Called for every milestone, in order. The default implementation
    /// dispatches to the typed hooks below.
    fn on_event(&mut self, event: &RunEvent) {
        match event {
            RunEvent::BlockSealed {
                at,
                network,
                block_index,
                entries,
            } => self.on_block_sealed(*at, *network, *block_index, *entries),
            RunEvent::AnomalousWindow {
                at,
                network,
                verdict,
            } => self.on_anomaly(*at, *network, verdict),
            RunEvent::HandshakeCompleted {
                at,
                device,
                network,
                breakdown,
            } => self.on_handshake(*at, *device, *network, breakdown),
            RunEvent::PluggedIn {
                at,
                device,
                network,
            } => self.on_plug_in(*at, *device, *network),
            RunEvent::Unplugged { at, device } => self.on_unplug(*at, *device),
            RunEvent::FaultInjected { at, id, family } => self.on_fault_injected(*at, *id, *family),
            RunEvent::FaultCleared { at, id, family } => self.on_fault_cleared(*at, *id, *family),
            RunEvent::FaultDetected {
                at,
                id,
                family,
                signal,
            } => self.on_fault_detected(*at, *id, *family, *signal),
            RunEvent::CommandPublished {
                at,
                seq,
                label,
                targets,
            } => self.on_command_published(*at, *seq, label, *targets),
            RunEvent::CommandApplied {
                at,
                seq,
                device,
                applied,
            } => self.on_command_applied(*at, *seq, *device, *applied),
            RunEvent::MetricsSnapshot { at, snapshot } => self.on_metrics(*at, snapshot),
        }
    }

    /// An aggregator sealed a verification-window block.
    fn on_block_sealed(
        &mut self,
        at: SimTime,
        network: AggregatorAddr,
        block_index: u64,
        entries: usize,
    ) {
        let _ = (at, network, block_index, entries);
    }

    /// A verification window closed with an anomalous verdict.
    fn on_anomaly(&mut self, at: SimTime, network: AggregatorAddr, verdict: &WindowVerdict) {
        let _ = (at, network, verdict);
    }

    /// A device completed a registration handshake.
    fn on_handshake(
        &mut self,
        at: SimTime,
        device: DeviceId,
        network: Option<AggregatorAddr>,
        breakdown: &HandshakeBreakdown,
    ) {
        let _ = (at, device, network, breakdown);
    }

    /// A device was plugged into a network's grid.
    fn on_plug_in(&mut self, at: SimTime, device: DeviceId, network: AggregatorAddr) {
        let _ = (at, device, network);
    }

    /// A device was unplugged.
    fn on_unplug(&mut self, at: SimTime, device: DeviceId) {
        let _ = (at, device);
    }

    /// A scheduled fault took effect.
    fn on_fault_injected(&mut self, at: SimTime, id: usize, family: FaultFamily) {
        let _ = (at, id, family);
    }

    /// A transient fault cleared.
    fn on_fault_cleared(&mut self, at: SimTime, id: usize, family: FaultFamily) {
        let _ = (at, id, family);
    }

    /// The system recognized an injected fault.
    fn on_fault_detected(
        &mut self,
        at: SimTime,
        id: usize,
        family: FaultFamily,
        signal: DetectionSignal,
    ) {
        let _ = (at, id, family, signal);
    }

    /// The fleet manager published a control-plane command.
    fn on_command_published(&mut self, at: SimTime, seq: u32, label: &str, targets: usize) {
        let _ = (at, seq, label, targets);
    }

    /// A device executed (or rejected) a delivered fleet command.
    fn on_command_applied(&mut self, at: SimTime, seq: u32, device: DeviceId, applied: bool) {
        let _ = (at, seq, device, applied);
    }

    /// The telemetry runtime emitted a periodic metrics snapshot. Fires only
    /// when the spec enabled telemetry
    /// ([`with_telemetry`](crate::spec::ScenarioSpec::with_telemetry)).
    fn on_metrics(&mut self, at: SimTime, snapshot: &MetricsSnapshot) {
        let _ = (at, snapshot);
    }
}

/// The do-nothing observer used by unprobed runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// A probe that records every event it sees, for inspection after the run.
///
/// By default it keeps everything. For long or large runs,
/// [`with_capacity`](RecordingProbe::with_capacity) turns it into a bounded
/// ring that keeps only the most recent events and counts what it sheds, so
/// memory stays flat no matter how long the run is:
///
/// ```
/// use rtem::prelude::*;
///
/// let spec = ScenarioSpec::paper_testbed(42).with_horizon(SimDuration::from_secs(30));
/// let handle = Experiment::new(spec)
///     .start_probed(RecordingProbe::with_capacity(8))
///     .unwrap();
/// let (_, probe) = handle.finish_probed();
/// assert!(probe.events().len() <= 8);
/// ```
///
/// Note that the count accessors ([`blocks_sealed`](RecordingProbe::blocks_sealed)
/// etc.) count only the *retained* events; in ring mode they undercount once
/// the ring has wrapped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingProbe {
    events: VecDeque<RunEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl RecordingProbe {
    /// A bounded recorder that keeps only the most recent `capacity` events,
    /// dropping the oldest and counting them in
    /// [`dropped`](RecordingProbe::dropped).
    pub fn with_capacity(capacity: usize) -> RecordingProbe {
        RecordingProbe {
            events: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// The retained events, in dispatch order (oldest first). In ring mode
    /// this is the most recent window of the stream.
    pub fn events(&self) -> &VecDeque<RunEvent> {
        &self.events
    }

    /// The ring capacity, or `None` for the default unbounded recorder.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Events shed from the front of the ring to stay within capacity.
    /// Always 0 for an unbounded recorder.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of blocks sealed across all networks.
    pub fn blocks_sealed(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::BlockSealed { .. }))
    }

    /// Number of completed registration handshakes.
    pub fn handshakes_completed(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::HandshakeCompleted { .. }))
    }

    /// Number of anomalous verification windows.
    pub fn anomalies(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::AnomalousWindow { .. }))
    }

    /// Number of plug-in events (the initial build-time plug-ins included).
    pub fn plug_ins(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::PluggedIn { .. }))
    }

    /// Number of unplug events.
    pub fn unplugs(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::Unplugged { .. }))
    }

    /// Number of faults that took effect.
    pub fn faults_injected(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::FaultInjected { .. }))
    }

    /// Number of faults the system recognized.
    pub fn faults_detected(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::FaultDetected { .. }))
    }

    /// Number of fleet commands published on the control plane.
    pub fn commands_published(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::CommandPublished { .. }))
    }

    /// Number of per-device command executions (acceptances only).
    pub fn commands_applied(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::CommandApplied { applied: true, .. }))
    }

    fn count(&self, f: impl Fn(&RunEvent) -> bool) -> usize {
        self.events.iter().filter(|e| f(e)).count()
    }
}

impl Probe for RecordingProbe {
    fn on_event(&mut self, event: &RunEvent) {
        if let Some(capacity) = self.capacity {
            if capacity == 0 {
                self.dropped += 1;
                return;
            }
            while self.events.len() >= capacity {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(event.clone());
    }
}

impl<P: Probe + ?Sized> Probe for &mut P {
    fn on_event(&mut self, event: &RunEvent) {
        (**self).on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimTime;

    #[test]
    fn recording_probe_counts_by_kind() {
        let mut probe = RecordingProbe::default();
        probe.on_event(&RunEvent::Unplugged {
            at: SimTime::from_secs(1),
            device: DeviceId(1),
        });
        probe.on_event(&RunEvent::PluggedIn {
            at: SimTime::from_secs(2),
            device: DeviceId(1),
            network: AggregatorAddr(1),
        });
        assert_eq!(probe.events().len(), 2);
        assert_eq!(probe.unplugs(), 1);
        assert_eq!(probe.plug_ins(), 1);
        assert_eq!(probe.blocks_sealed(), 0);
    }

    #[test]
    fn bounded_ring_keeps_last_n_and_counts_drops() {
        let mut probe = RecordingProbe::with_capacity(3);
        for second in 1..=5u64 {
            probe.on_event(&RunEvent::Unplugged {
                at: SimTime::from_secs(second),
                device: DeviceId(second),
            });
        }
        assert_eq!(probe.events().len(), 3);
        assert_eq!(probe.dropped(), 2);
        assert_eq!(probe.capacity(), Some(3));
        // The retained window is the most recent one, oldest first.
        let retained: Vec<SimTime> = probe.events().iter().map(|e| e.at()).collect();
        assert_eq!(
            retained,
            vec![
                SimTime::from_secs(3),
                SimTime::from_secs(4),
                SimTime::from_secs(5)
            ]
        );

        // Capacity 0 records nothing but still counts.
        let mut none = RecordingProbe::with_capacity(0);
        none.on_event(&RunEvent::Unplugged {
            at: SimTime::ZERO,
            device: DeviceId(1),
        });
        assert!(none.events().is_empty());
        assert_eq!(none.dropped(), 1);

        // The default recorder stays unbounded.
        assert_eq!(RecordingProbe::default().capacity(), None);
    }

    #[test]
    fn default_hooks_are_no_ops() {
        let mut null = NullProbe;
        null.on_event(&RunEvent::Unplugged {
            at: SimTime::ZERO,
            device: DeviceId(9),
        });
    }
}
