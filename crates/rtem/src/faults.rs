//! Fault injection and resilience accounting — the facade over `rtem-faults`.
//!
//! Build a [`FaultPlan`] (seven families: sensor faults, meter tampering,
//! link-degradation bursts, device crash/restart, aggregator outage with
//! failover, byzantine consensus voters, telegram corruption at the
//! meter-codec boundary), attach it to a
//! [`ScenarioSpec`](crate::spec::ScenarioSpec) with
//! [`with_fault_plan`](crate::spec::ScenarioSpec::with_fault_plan), and run
//! the experiment as usual. The run's
//! [`RunReport`](crate::report::RunReport) then carries a
//! [`ResilienceReport`]: per-family injected vs. detected counts, detection
//! latencies, audit findings attributed to tamper injections, and the
//! accuracy-under-fault delta against a clean twin run of the same spec
//! without the plan.
//!
//! ```
//! use rtem::prelude::*;
//!
//! let plan = FaultPlan::new().tamper_at(SimTime::from_secs(22), AggregatorAddr(1));
//! let spec = ScenarioSpec::paper_testbed(42)
//!     .with_horizon(SimDuration::from_secs(40))
//!     .with_fault_plan(plan);
//! let report = Experiment::new(spec).run().unwrap();
//! let resilience = report.resilience.as_ref().unwrap();
//! assert_eq!(resilience.detection_rate(), Some(1.0));
//! assert!(!report.all_ledgers_clean(), "the forgery is in the ledger");
//! ```

use rtem_chain::audit::Finding;
use rtem_net::packet::AggregatorAddr;

pub use rtem_faults::event::{
    CorruptionMode, DetectionSignal, FaultEvent, FaultFamily, FaultRecord, LinkTarget,
};
pub use rtem_faults::plan::{FaultPlan, FaultPlanError};
pub use rtem_sensors::fault::{SensorFault, SensorFaultKind};

/// Per-family injected/detected accounting of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyResilience {
    /// The family.
    pub family: FaultFamily,
    /// Faults of the family that actually took effect.
    pub injected: usize,
    /// Of those, how many the system recognized.
    pub detected: usize,
    /// Of those, how many the system missed (`injected - detected`) — an
    /// explicit count so gates can assert on blind spots directly instead
    /// of inferring them from a `None` latency.
    pub undetected: usize,
    /// Mean injection-to-detection latency over the detected ones, seconds.
    pub mean_detection_latency_s: Option<f64>,
    /// Worst detection latency, seconds.
    pub max_detection_latency_s: Option<f64>,
}

impl FamilyResilience {
    /// `detected / injected`, `None` when nothing was injected.
    pub fn detection_rate(&self) -> Option<f64> {
        (self.injected > 0).then(|| self.detected as f64 / self.injected as f64)
    }
}

/// Resilience accounting of one faulted run.
///
/// Attached to [`RunReport::resilience`](crate::report::RunReport::resilience)
/// whenever the spec's fault plan is non-empty. Deterministic: the same spec
/// (plan included) and seed produce an identical report.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Lifecycle record of every scheduled fault, in plan order.
    pub faults: Vec<FaultRecord>,
    /// Per-family aggregation, ordered by family.
    pub families: Vec<FamilyResilience>,
    /// Mean Fig. 5 overhead of the faulted run, settled windows only.
    pub faulted_mean_overhead_percent: Option<f64>,
    /// Mean Fig. 5 overhead of the clean twin run (same spec, no plan).
    pub clean_mean_overhead_percent: Option<f64>,
    /// Post-run chain-audit findings across all networks.
    pub audit_findings: usize,
    /// Of those, how many land on a block a tamper injection forged.
    pub audit_findings_attributed: usize,
}

impl ResilienceReport {
    /// Faults that actually took effect.
    pub fn injected(&self) -> usize {
        self.faults.iter().filter(|f| f.injected()).count()
    }

    /// Faults the system recognized.
    pub fn detected(&self) -> usize {
        self.faults.iter().filter(|f| f.detected()).count()
    }

    /// Faults that took effect but were never recognized.
    pub fn undetected(&self) -> usize {
        self.injected() - self.detected()
    }

    /// Overall `detected / injected`, `None` when nothing took effect.
    pub fn detection_rate(&self) -> Option<f64> {
        let injected = self.injected();
        (injected > 0).then(|| self.detected() as f64 / injected as f64)
    }

    /// The accounting of one family, if the plan contained it.
    pub fn family(&self, family: FaultFamily) -> Option<&FamilyResilience> {
        self.families.iter().find(|f| f.family == family)
    }

    /// How much the faults moved the Fig. 5 accuracy, in percentage points
    /// (faulted minus clean twin). `None` when either run had no settled
    /// window.
    pub fn accuracy_delta_percent(&self) -> Option<f64> {
        match (
            self.faulted_mean_overhead_percent,
            self.clean_mean_overhead_percent,
        ) {
            (Some(faulted), Some(clean)) => Some(faulted - clean),
            _ => None,
        }
    }

    /// Audit findings *not* explained by a scheduled tamper injection —
    /// anything here means the run corrupted its ledgers on its own.
    pub fn audit_findings_unattributed(&self) -> usize {
        self.audit_findings - self.audit_findings_attributed
    }
}

/// Assembles the report from the world's fault records, the final chain
/// audits and the two runs' accuracy summaries.
pub(crate) fn build_resilience(
    records: Vec<FaultRecord>,
    events: &[FaultEvent],
    audit_findings: &[(AggregatorAddr, Finding)],
    faulted_mean_overhead_percent: Option<f64>,
    clean_mean_overhead_percent: Option<f64>,
) -> ResilienceReport {
    let mut families: Vec<FamilyResilience> = Vec::new();
    for family in [
        FaultFamily::Sensor,
        FaultFamily::Tamper,
        FaultFamily::Link,
        FaultFamily::Crash,
        FaultFamily::Outage,
        FaultFamily::Byzantine,
        FaultFamily::Corruption,
    ] {
        let of_family: Vec<&FaultRecord> = records.iter().filter(|r| r.family == family).collect();
        if of_family.is_empty() {
            continue;
        }
        let latencies: Vec<f64> = of_family
            .iter()
            .filter_map(|r| r.detection_latency())
            .map(|d| d.as_secs_f64())
            .collect();
        let injected = of_family.iter().filter(|r| r.injected()).count();
        let detected = of_family.iter().filter(|r| r.detected()).count();
        families.push(FamilyResilience {
            family,
            injected,
            detected,
            undetected: injected - detected,
            mean_detection_latency_s: (!latencies.is_empty())
                .then(|| latencies.iter().sum::<f64>() / latencies.len() as f64),
            max_detection_latency_s: latencies
                .iter()
                .copied()
                .fold(None, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l)))),
        });
    }

    let attributed = audit_findings
        .iter()
        .filter(|(network, finding)| {
            records.iter().any(|r| {
                r.tampered_block == Some(finding.block_index)
                    && events.get(r.id).and_then(FaultEvent::network) == Some(*network)
            })
        })
        .count();

    ResilienceReport {
        faults: records,
        families,
        faulted_mean_overhead_percent,
        clean_mean_overhead_percent,
        audit_findings: audit_findings.len(),
        audit_findings_attributed: attributed,
    }
}
