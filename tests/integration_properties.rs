//! Property-based tests over the core data structures and invariants:
//! wire-format round trips, hash-chain tamper evidence, Merkle proofs,
//! energy accounting, TDMA slot invariants and the RSSI scan.

use proptest::prelude::*;
use rtem_chain::chain::HashChain;
use rtem_chain::ledger::LedgerEntry;
use rtem_chain::merkle::{merkle_root, MerkleProof};
use rtem_chain::sha256::Sha256;
use rtem_net::packet::{AggregatorAddr, DeviceId, MeasurementRecord, Packet};
use rtem_net::tdma::SlotTable;
use rtem_sensors::energy::{EnergyAccumulator, Milliamps, Millivolts};
use rtem_sim::rng::SimRng;
use rtem_sim::time::{SimDuration, SimTime};
use rtem_sim::trace::TimeSeries;

fn record_strategy() -> impl Strategy<Value = MeasurementRecord> {
    (
        0u64..1000,
        0u64..100_000,
        0u64..10_000_000,
        0u64..1_000_000,
        0u64..10_000_000,
        any::<bool>(),
    )
        .prop_map(|(device, seq, start, len, current, backfilled)| MeasurementRecord {
            device: DeviceId(device),
            sequence: seq,
            interval_start_us: start,
            interval_end_us: start + len,
            mean_current_ua: current,
            charge_uas: current / 10,
            backfilled,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn consumption_report_round_trips(records in prop::collection::vec(record_strategy(), 0..20),
                                       device in 0u64..1000,
                                       master in prop::option::of(0u32..100)) {
        let packet = Packet::ConsumptionReport {
            device: DeviceId(device),
            master: master.map(AggregatorAddr),
            records,
        };
        let decoded = Packet::decode(&packet.encode()).unwrap();
        prop_assert_eq!(decoded, packet);
    }

    #[test]
    fn ledger_entry_round_trips(device in any::<u64>(), seq in any::<u64>(),
                                charge in any::<u64>(), backfilled in any::<bool>()) {
        let entry = LedgerEntry {
            device_id: device,
            collected_by: 1,
            billed_by: 2,
            sequence: seq,
            interval_start_us: 0,
            interval_end_us: 100_000,
            charge_uas: charge,
            backfilled,
        };
        prop_assert_eq!(LedgerEntry::from_bytes(&entry.to_bytes()), Some(entry));
    }

    #[test]
    fn sha256_incremental_equals_one_shot(data in prop::collection::vec(any::<u8>(), 0..512),
                                           split in 1usize..64) {
        let one_shot = Sha256::digest(&data);
        let mut hasher = Sha256::new();
        for chunk in data.chunks(split) {
            hasher.update(chunk);
        }
        prop_assert_eq!(hasher.finalize(), one_shot);
    }

    #[test]
    fn merkle_proofs_verify_and_reject_forgeries(
        leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..32), 1..16),
        pick in any::<prop::sample::Index>()
    ) {
        let root = merkle_root(&leaves);
        let index = pick.index(leaves.len());
        let proof = MerkleProof::build(&leaves, index).unwrap();
        prop_assert!(proof.verify(&leaves[index], &root));
        // A different leaf value must not verify under the same proof.
        let mut forged = leaves[index].clone();
        forged.push(0xFF);
        prop_assert!(!proof.verify(&forged, &root));
    }

    #[test]
    fn chain_tampering_is_always_detected(
        blocks in prop::collection::vec(prop::collection::vec(prop::collection::vec(any::<u8>(), 1..16), 1..6), 1..8),
        victim_block in any::<prop::sample::Index>(),
        victim_record in any::<prop::sample::Index>()
    ) {
        let mut chain = HashChain::new(1, 0);
        for (i, records) in blocks.iter().enumerate() {
            chain.seal_block(1, (i as u64 + 1) * 1000, records.clone()).unwrap();
        }
        prop_assert!(chain.verify().is_ok());
        // Tamper with one record somewhere in the chain (skipping genesis).
        let block_index = 1 + victim_block.index(blocks.len()) as u64;
        let record_count = chain.block(block_index).unwrap().record_count();
        let record_index = victim_record.index(record_count);
        chain
            .block_mut_for_experiment(block_index)
            .unwrap()
            .tamper_record_for_experiment(record_index, b"forged-value".to_vec());
        prop_assert!(chain.verify().is_err(), "tampering must break verification");
    }

    #[test]
    fn energy_accumulator_is_order_independent(samples in prop::collection::vec(0.0f64..500.0, 1..64)) {
        let mut forward = EnergyAccumulator::new(Millivolts::usb_bus());
        let mut reverse = EnergyAccumulator::new(Millivolts::usb_bus());
        for &s in &samples {
            forward.add_sample(Milliamps::new(s), SimDuration::from_millis(100));
        }
        for &s in samples.iter().rev() {
            reverse.add_sample(Milliamps::new(s), SimDuration::from_millis(100));
        }
        prop_assert!((forward.charge().value() - reverse.charge().value()).abs() < 1e-6);
        prop_assert!(forward.charge().value() >= 0.0);
    }

    #[test]
    fn windowed_sums_conserve_total(values in prop::collection::vec(0.0f64..100.0, 1..200),
                                    window_ms in 100u64..5_000) {
        let series: TimeSeries = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (SimTime::from_millis(i as u64 * 100), v))
            .collect();
        let sums = series.windowed_sums(SimTime::ZERO, SimDuration::from_millis(window_ms));
        let total: f64 = sums.iter().sum();
        prop_assert!((total - series.sum()).abs() < 1e-6);
    }

    #[test]
    fn slot_assignments_are_unique(device_ids in prop::collection::btree_set(0u64..500, 1..10)) {
        let mut table = SlotTable::testbed();
        let mut assigned = Vec::new();
        for &id in &device_ids {
            assigned.push(table.assign(DeviceId(id)).unwrap());
        }
        let mut deduped = assigned.clone();
        deduped.sort_unstable();
        deduped.dedup();
        prop_assert_eq!(deduped.len(), assigned.len(), "no two devices share a slot");
        prop_assert_eq!(table.assigned_slots() as usize, device_ids.len());
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_samples_stay_in_bounds(seed in any::<u64>(), low in -1000.0f64..1000.0, width in 0.0f64..1000.0) {
        let mut rng = SimRng::seed_from_u64(seed);
        let high = low + width;
        for _ in 0..64 {
            let x = rng.uniform(low, high);
            prop_assert!(x >= low && x <= high);
        }
    }
}
