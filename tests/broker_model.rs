//! Property-style model tests for the MQTT broker's control-plane
//! guarantees.
//!
//! PR 7 grew the broker from plain QoS 0/1 delivery into the control-plane
//! transport: QoS 2 exactly-once via the PUBREC/PUBREL/PUBCOMP handshake,
//! retained messages with last-writer-wins, and persistent-session resume
//! that replays queued publishes in publish order. These tests drive the
//! broker through long seeded interleavings of every operation the fleet
//! manager performs — publish at each QoS (retained or not), disconnect,
//! reconnect, drain — and check each step against a naive reference model
//! whose semantics are obviously correct.
//!
//! The delivery guarantees under test, per publish and matching subscriber:
//!
//! * loss-free link, subscriber connected: delivered exactly once at every
//!   QoS;
//! * lossy link (loss < 1), connected: QoS 2 delivered exactly once; QoS 0/1
//!   at most once (QoS 1's retry budget is finite), never duplicated;
//! * disconnected: QoS ≥ 1 queued and replayed in publish order on resume
//!   (QoS 2 replay survives the lossy link too); QoS 0 dropped;
//! * retained: `retained_payload` always equals the last non-empty retained
//!   publish (empty clears), and every retained replay carries a payload
//!   that was the topic's retained message at some point.

use bytes::Bytes;
use rtem::net::broker::{ClientId, Delivery, MqttBroker, QoS};
use rtem::net::link::LinkConfig;
use rtem::sim::rng::SimRng;
use rtem::sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

const MANAGER: ClientId = ClientId(1);
const SUB_IDEAL: ClientId = ClientId(10);
const SUB_LOSSY: ClientId = ClientId(11);
const TOPICS: [&str; 3] = ["cmd/a", "cmd/b", "cmd/c"];
const LOSS: f64 = 0.35;

fn lossy() -> LinkConfig {
    LinkConfig {
        loss_probability: LOSS,
        ..LinkConfig::wifi()
    }
}

/// Unique per-publish payload: the publish counter in decimal.
fn payload(id: u64) -> Bytes {
    Bytes::from(id.to_string().into_bytes())
}

fn payload_id(delivery: &Delivery) -> u64 {
    std::str::from_utf8(&delivery.payload)
        .expect("payloads are decimal strings")
        .parse()
        .expect("payloads are publish counters")
}

/// What the reference model expects one subscriber to receive, given the
/// broker's documented QoS semantics and that subscriber's link quality.
#[derive(Default)]
struct NaiveSession {
    connected: bool,
    lossy: bool,
    /// Payload ids that MUST arrive exactly once (live, `retained: false`).
    must: BTreeSet<u64>,
    /// Payload ids that MAY arrive, at most once (QoS 0/1 over loss).
    may: BTreeSet<u64>,
    /// QoS ≥ 1 publishes parked while disconnected, in publish order.
    /// `None` is a retained-clear (empty payload) — replayed like any
    /// queued publish, and its topic counts as covered for the resume-time
    /// retained replay.
    queue: Vec<(Option<u64>, QoS, String)>,
    /// Retained replays a loss-free link must see, in trigger order.
    must_retained: Vec<(String, u64)>,
}

impl NaiveSession {
    /// Classifies one live publish addressed to this session. `None` is a
    /// retained-clear: its empty payload crosses the wire too, but the
    /// assertions ignore it.
    fn on_publish(&mut self, id: Option<u64>, qos: QoS, topic: &str) {
        if !self.connected {
            if qos != QoS::AtMostOnce {
                self.queue.push((id, qos, topic.to_string()));
            }
            return;
        }
        let Some(id) = id else { return };
        if !self.lossy || qos == QoS::ExactlyOnce {
            self.must.insert(id);
        } else {
            self.may.insert(id);
        }
    }

    /// Session resume: the queue replays in order over the live link, then
    /// retained topics the replay did not cover are re-delivered.
    fn on_reconnect(&mut self, retained: &BTreeMap<String, u64>) {
        let replayed: BTreeSet<String> = self.queue.iter().map(|(_, _, t)| t.clone()).collect();
        for (id, qos, _) in self.queue.drain(..) {
            let Some(id) = id else { continue };
            if !self.lossy || qos == QoS::ExactlyOnce {
                self.must.insert(id);
            } else {
                self.may.insert(id);
            }
        }
        if !self.lossy {
            for (topic, id) in retained {
                if !replayed.contains(topic) {
                    self.must_retained.push((topic.clone(), *id));
                }
            }
        }
    }
}

/// The obviously-correct reference: last-writer-wins retained slots plus a
/// per-subscriber delivery classification.
struct NaiveBroker {
    /// topic → payload id of the last non-empty retained publish.
    retained: BTreeMap<String, u64>,
    /// Every (topic, id) that was ever the retained message of its topic.
    retained_history: BTreeSet<(String, u64)>,
    sessions: BTreeMap<ClientId, NaiveSession>,
}

/// One seeded interleaving of publishes, disconnects, resumes and drains.
fn run_interleaving(seed: u64, steps: usize) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut broker = MqttBroker::new(SimRng::seed_from_u64(seed ^ 0xb0de));
    broker.connect(MANAGER, LinkConfig::ideal());
    broker.connect(SUB_IDEAL, LinkConfig::ideal());
    broker.connect(SUB_LOSSY, lossy());
    broker
        .subscribe(SUB_IDEAL, "cmd/+")
        .expect("wildcard filter is valid");
    for topic in TOPICS {
        broker.subscribe(SUB_LOSSY, topic).expect("topic is valid");
    }

    let mut model = NaiveBroker {
        retained: BTreeMap::new(),
        retained_history: BTreeSet::new(),
        sessions: BTreeMap::new(),
    };
    for (id, is_lossy) in [(SUB_IDEAL, false), (SUB_LOSSY, true)] {
        model.sessions.insert(
            id,
            NaiveSession {
                connected: true,
                lossy: is_lossy,
                ..NaiveSession::default()
            },
        );
    }

    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    let mut live: BTreeMap<ClientId, Vec<Delivery>> = BTreeMap::new();
    let mut replayed_retained: BTreeMap<ClientId, Vec<(String, u64)>> = BTreeMap::new();

    let drain = |broker: &mut MqttBroker,
                 live: &mut BTreeMap<ClientId, Vec<Delivery>>,
                 replayed: &mut BTreeMap<ClientId, Vec<(String, u64)>>,
                 at: SimTime| {
        for delivery in broker.drain_due(at) {
            if delivery.payload.is_empty() {
                // A retained-clear crossing the wire; carries no counter.
                continue;
            }
            if delivery.retained {
                replayed
                    .entry(delivery.to)
                    .or_default()
                    .push((delivery.topic.clone(), payload_id(&delivery)));
            } else {
                live.entry(delivery.to).or_default().push(delivery);
            }
        }
    };

    for step in 0..steps {
        match rng.next_below(100) {
            // Publish a uniquely-numbered message (the dominant operation).
            0..=59 => {
                let topic = TOPICS[rng.next_below(TOPICS.len() as u64) as usize];
                let qos = match rng.next_below(3) {
                    0 => QoS::AtMostOnce,
                    1 => QoS::AtLeastOnce,
                    _ => QoS::ExactlyOnce,
                };
                let retain = rng.chance(0.25);
                let id = next_id;
                next_id += 1;
                broker
                    .publish_with(MANAGER, topic, payload(id), qos, retain, now)
                    .expect("publish is valid");
                if retain {
                    model.retained.insert(topic.to_string(), id);
                    model.retained_history.insert((topic.to_string(), id));
                }
                for session in model.sessions.values_mut() {
                    session.on_publish(Some(id), qos, topic);
                }
            }
            // Clear one topic's retained slot (empty retained payload).
            60..=64 => {
                let topic = TOPICS[rng.next_below(TOPICS.len() as u64) as usize];
                broker
                    .publish_with(MANAGER, topic, Bytes::new(), QoS::AtLeastOnce, true, now)
                    .expect("clear is valid");
                model.retained.remove(topic);
                for session in model.sessions.values_mut() {
                    session.on_publish(None, QoS::AtLeastOnce, topic);
                }
            }
            // Drop or resume one subscriber's session.
            65..=84 => {
                let id = if rng.chance(0.5) {
                    SUB_IDEAL
                } else {
                    SUB_LOSSY
                };
                let session = model.sessions.get_mut(&id).expect("session exists");
                if session.connected {
                    broker.disconnect(id);
                    session.connected = false;
                } else {
                    assert!(broker.reconnect(id, now), "subscriber is known");
                    session.connected = true;
                    let retained = model.retained.clone();
                    model
                        .sessions
                        .get_mut(&id)
                        .expect("session exists")
                        .on_reconnect(&retained);
                }
            }
            // Drain everything due so far.
            85..=94 => {
                drain(&mut broker, &mut live, &mut replayed_retained, now);
            }
            // Let simulated time pass.
            _ => {}
        }
        now += SimDuration::from_millis(1 + rng.next_below(40));

        // Last-writer-wins holds after every single operation.
        for topic in TOPICS {
            let expected = model.retained.get(topic).map(|&id| payload(id));
            assert_eq!(
                broker.retained_payload(topic).cloned(),
                expected,
                "retained slot of {topic} at step {step}"
            );
        }
    }

    // Settle: resume every session, let all retransmissions land, drain.
    for (&id, session) in &mut model.sessions {
        if !session.connected {
            broker.reconnect(id, now);
            session.connected = true;
            let retained = model.retained.clone();
            session.on_reconnect(&retained);
        }
    }
    now += SimDuration::from_secs(3_600);
    drain(&mut broker, &mut live, &mut replayed_retained, now);

    for (&id, session) in &model.sessions {
        let deliveries = live.remove(&id).unwrap_or_default();
        let ids: Vec<u64> = deliveries.iter().map(payload_id).collect();
        let unique: BTreeSet<u64> = ids.iter().copied().collect();
        assert_eq!(
            unique.len(),
            ids.len(),
            "seed {seed}: {id} saw a duplicate live delivery"
        );
        for must in &session.must {
            assert!(
                unique.contains(must),
                "seed {seed}: {id} lost guaranteed publish {must}"
            );
        }
        for got in &unique {
            assert!(
                session.must.contains(got) || session.may.contains(got),
                "seed {seed}: {id} received unexpected publish {got}"
            );
        }
        if !session.lossy {
            // Loss-free constant-latency link: live + replayed deliveries
            // arrive in global publish order.
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "seed {seed}: {id} saw reordered deliveries");
        }

        let retained_got = replayed_retained.remove(&id).unwrap_or_default();
        for entry in &retained_got {
            assert!(
                model.retained_history.contains(entry),
                "seed {seed}: {id} got a retained replay {entry:?} that was \
                 never the topic's retained message"
            );
        }
        if !session.lossy {
            assert_eq!(
                retained_got, session.must_retained,
                "seed {seed}: {id} retained replays diverge from the model"
            );
        }
    }
}

#[test]
fn broker_matches_naive_model_across_seeds() {
    for seed in 0..16 {
        run_interleaving(seed, 400);
    }
}

#[test]
fn broker_matches_naive_model_on_long_runs() {
    run_interleaving(777, 2_500);
}

/// The PR 5 regression this file guards (satellite of PR 7): a QoS 1
/// publish addressed to a disconnected persistent session used to be lost;
/// it must be queued and delivered exactly once after the session resumes —
/// and never delivered a second time by later reconnects.
#[test]
fn qos1_publish_while_disconnected_is_delivered_exactly_once_on_resume() {
    let mut broker = MqttBroker::new(SimRng::seed_from_u64(5));
    broker.connect(MANAGER, LinkConfig::ideal());
    broker.connect(SUB_IDEAL, LinkConfig::ideal());
    broker.subscribe(SUB_IDEAL, "cmd/a").expect("valid filter");

    broker.disconnect(SUB_IDEAL);
    broker
        .publish(
            MANAGER,
            "cmd/a",
            payload(1),
            QoS::AtLeastOnce,
            SimTime::from_secs(1),
        )
        .expect("publish is valid");
    assert_eq!(broker.session_queue_len(SUB_IDEAL), Some(1));
    assert!(
        broker.drain_due(SimTime::from_secs(2)).is_empty(),
        "nothing is delivered while the session is down"
    );

    assert!(broker.reconnect(SUB_IDEAL, SimTime::from_secs(3)));
    let replay = broker.drain_due(SimTime::from_secs(4));
    assert_eq!(replay.len(), 1, "the queued publish is replayed");
    assert_eq!(payload_id(&replay[0]), 1);
    assert!(!replay[0].retained);

    // A second resume cycle must not re-deliver it.
    broker.disconnect(SUB_IDEAL);
    assert!(broker.reconnect(SUB_IDEAL, SimTime::from_secs(5)));
    assert!(
        broker.drain_due(SimTime::from_secs(3_600)).is_empty(),
        "the replayed publish must not be delivered twice"
    );
}

/// QoS 2 under heavy loss: every publish still arrives exactly once — the
/// PUBLISH leg retransmits until the link carries it and duplicates forced
/// by lost handshake frames are suppressed by packet id.
#[test]
fn qos2_is_exactly_once_under_heavy_loss() {
    let mut broker = MqttBroker::new(SimRng::seed_from_u64(9));
    broker.connect(MANAGER, LinkConfig::ideal());
    broker.connect(
        SUB_LOSSY,
        LinkConfig {
            loss_probability: 0.6,
            ..LinkConfig::wifi()
        },
    );
    broker.subscribe(SUB_LOSSY, "cmd/+").expect("valid filter");

    const N: u64 = 200;
    for id in 0..N {
        broker
            .publish(
                MANAGER,
                TOPICS[(id % 3) as usize],
                payload(id),
                QoS::ExactlyOnce,
                SimTime::from_millis(id * 10),
            )
            .expect("publish is valid");
    }
    let delivered = broker.drain_due(SimTime::from_secs(3_600));
    let ids: BTreeSet<u64> = delivered.iter().map(payload_id).collect();
    assert_eq!(delivered.len() as u64, N, "no drops and no duplicates");
    assert_eq!(ids.len() as u64, N, "every publish arrived");
    assert!(
        broker.qos2_dup_suppressed() > 0,
        "a 60 % loss rate must have forced at least one suppressed duplicate"
    );
}

/// Retained config reaches late subscribers: last-writer-wins on the slot,
/// a fresh `subscribe_at` receives only the newest payload, and an empty
/// retained publish clears the slot for everyone after.
#[test]
fn retained_config_is_last_writer_wins_for_late_subscribers() {
    let mut broker = MqttBroker::new(SimRng::seed_from_u64(13));
    broker.connect(MANAGER, LinkConfig::ideal());
    for id in 0..3u64 {
        broker
            .publish_with(
                MANAGER,
                "cmd/a",
                payload(id),
                QoS::AtLeastOnce,
                true,
                SimTime::from_secs(id),
            )
            .expect("publish is valid");
    }

    let late = ClientId(30);
    broker.connect(late, LinkConfig::ideal());
    broker
        .subscribe_at(late, "cmd/+", SimTime::from_secs(10))
        .expect("valid filter");
    let got = broker.drain_due(SimTime::from_secs(11));
    assert_eq!(got.len(), 1, "only the newest retained payload is replayed");
    assert_eq!(payload_id(&got[0]), 2);
    assert!(got[0].retained);

    // An empty retained publish clears the slot: the next late subscriber
    // receives nothing.
    broker
        .publish_with(
            MANAGER,
            "cmd/a",
            Bytes::new(),
            QoS::AtLeastOnce,
            true,
            SimTime::from_secs(12),
        )
        .expect("clear is valid");
    assert_eq!(broker.retained_payload("cmd/a"), None);
    // The clear itself crosses the wire to the connected subscriber.
    let clears = broker.drain_due(SimTime::from_secs(13));
    assert!(clears.iter().all(|d| d.payload.is_empty()));
    let later = ClientId(31);
    broker.connect(later, LinkConfig::ideal());
    broker
        .subscribe_at(later, "cmd/a", SimTime::from_secs(13))
        .expect("valid filter");
    assert!(broker.drain_due(SimTime::from_secs(3_600)).is_empty());
}
