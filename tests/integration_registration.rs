//! Integration test: device registration (Fig. 3, sequence 1) end to end
//! through the full world — devices, broker, aggregator, ledger.

use rtem_core::scenario::{DeviceLoad, ScenarioBuilder};
use rtem_net::packet::MembershipKind;
use rtem_sim::time::{SimDuration, SimTime};

#[test]
fn all_devices_obtain_master_membership_in_their_home_network() {
    let mut world = ScenarioBuilder::paper_testbed(101).build();
    world.run_until(SimTime::from_secs(30));

    for n in 0..2u32 {
        let addr = ScenarioBuilder::network_addr(n);
        let aggregator = world.aggregator(addr).expect("network exists");
        assert_eq!(aggregator.registry().len(), 2, "network {addr} has both devices");
        for j in 0..2u32 {
            let id = ScenarioBuilder::device_id(n, j);
            let membership = aggregator
                .registry()
                .membership(id)
                .expect("device registered");
            assert_eq!(membership.kind, MembershipKind::Master);
            let device = world.device(id).expect("device exists");
            assert!(device.is_registered());
            assert_eq!(device.master(), Some(addr));
        }
    }
}

#[test]
fn registration_handshake_takes_about_six_seconds() {
    let mut world = ScenarioBuilder::paper_testbed(102).build();
    world.run_until(SimTime::from_secs(30));
    let metrics = world.metrics();
    let stats = metrics.handshake_stats().expect("handshakes completed");
    assert_eq!(stats.count, 4, "every device completed one handshake");
    assert!(
        (5.0..7.0).contains(&stats.mean_s),
        "mean handshake {} s",
        stats.mean_s
    );
}

#[test]
fn reports_flow_and_are_committed_to_the_ledger() {
    let mut world = ScenarioBuilder::paper_testbed(103)
        .with_verification_window(SimDuration::from_secs(5))
        .build();
    world.run_until(SimTime::from_secs(40));
    let metrics = world.metrics();
    for summary in &metrics.networks {
        assert!(summary.reports_accepted > 50, "network {}", summary.network);
        assert!(summary.blocks > 3, "blocks sealed on {}", summary.network);
        assert!(summary.ledger_entries > 100, "entries on {}", summary.network);
        assert_eq!(summary.nacks_sent, 0, "no Nacks in the static scenario");
    }
}

#[test]
fn aggregator_capacity_limits_membership() {
    // 12 devices contend for an aggregator with 10 reporting slots.
    let mut world = ScenarioBuilder::single_network(12, 104)
        .with_load(DeviceLoad::ReportingOnly)
        .build();
    world.run_until(SimTime::from_secs(60));
    let addr = ScenarioBuilder::network_addr(0);
    let aggregator = world.aggregator(addr).unwrap();
    assert_eq!(
        aggregator.registry().len(),
        10,
        "membership is capped by the slot table"
    );
    let registered = world
        .device_ids()
        .into_iter()
        .filter(|&id| world.device(id).map(|d| d.is_registered()).unwrap_or(false))
        .count();
    assert_eq!(registered, 10);
}
