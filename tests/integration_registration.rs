//! Integration test: device registration (Fig. 3, sequence 1) end to end
//! through the full world — devices, broker, aggregator, ledger.

use rtem::prelude::*;

#[test]
fn all_devices_obtain_master_membership_in_their_home_network() {
    let spec = ScenarioSpec::paper_testbed(101).with_horizon(SimDuration::from_secs(30));
    let report = Experiment::new(spec).run().unwrap();

    for n in 0..2u32 {
        let addr = ScenarioSpec::network_addr(n);
        let aggregator = report.world().aggregator(addr).expect("network exists");
        assert_eq!(
            aggregator.registry().len(),
            2,
            "network {addr} has both devices"
        );
        for j in 0..2u32 {
            let id = ScenarioSpec::device_id(n, j);
            let membership = aggregator
                .registry()
                .membership(id)
                .expect("device registered");
            assert_eq!(membership.kind, MembershipKind::Master);
            let device = report.world().device(id).expect("device exists");
            assert!(device.is_registered());
            assert_eq!(device.master(), Some(addr));
        }
    }
}

#[test]
fn registration_handshake_takes_about_six_seconds() {
    let spec = ScenarioSpec::paper_testbed(102).with_horizon(SimDuration::from_secs(30));
    let report = Experiment::new(spec).run().unwrap();
    let stats = report.handshakes.expect("handshakes completed");
    assert_eq!(stats.count, 4, "every device completed one handshake");
    assert!(
        (5.0..7.0).contains(&stats.mean_s),
        "mean handshake {} s",
        stats.mean_s
    );
}

#[test]
fn reports_flow_and_are_committed_to_the_ledger() {
    let spec = ScenarioSpec::paper_testbed(103)
        .with_horizon(SimDuration::from_secs(40))
        .with_verification_window(SimDuration::from_secs(5));
    let report = Experiment::new(spec).run().unwrap();
    for summary in &report.metrics.networks {
        assert!(summary.reports_accepted > 50, "network {}", summary.network);
        assert!(summary.blocks > 3, "blocks sealed on {}", summary.network);
        assert!(
            summary.ledger_entries > 100,
            "entries on {}",
            summary.network
        );
        assert_eq!(summary.nacks_sent, 0, "no Nacks in the static scenario");
    }
    assert!(report.all_ledgers_clean(), "every ledger audits clean");
}

#[test]
fn aggregator_capacity_limits_membership() {
    // 12 devices contend for an aggregator with 10 reporting slots.
    let spec = ScenarioSpec::single_network(12, 104)
        .with_horizon(SimDuration::from_secs(60))
        .with_load(DeviceLoad::ReportingOnly);
    let report = Experiment::new(spec).run().unwrap();
    let addr = ScenarioSpec::network_addr(0);
    let aggregator = report.world().aggregator(addr).unwrap();
    assert_eq!(
        aggregator.registry().len(),
        10,
        "membership is capped by the slot table"
    );
    let world = report.world();
    let registered = world
        .device_ids()
        .into_iter()
        .filter(|&id| world.device(id).map(|d| d.is_registered()).unwrap_or(false))
        .count();
    assert_eq!(registered, 10);
}
