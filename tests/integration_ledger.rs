//! Integration test: tamper-evident storage — the architecture's claim that
//! "by encapsulating the consumption data into a blockchain, data storage is
//! made tamper-proof" (§II-A), exercised through a full simulated run.

use rtem::chain::audit::{audit_chain, FindingKind};
use rtem::chain::ledger::LedgerEntry;
use rtem::prelude::*;

#[test]
fn ledgers_audit_clean_after_a_normal_run() {
    let spec = ScenarioSpec::paper_testbed(401)
        .with_horizon(SimDuration::from_secs(60))
        .with_verification_window(SimDuration::from_secs(5));
    let report = Experiment::new(spec).run().unwrap();
    assert!(report.all_ledgers_clean());
    for summary in &report.ledgers {
        assert!(
            summary.audit_clean,
            "ledger of {} must audit clean",
            summary.network
        );
        assert!(summary.first_bad_block.is_none());
        assert!(summary.blocks > 5);
        assert!(summary.entries > 100);
        assert!(summary.accounts_match_chain);
    }
}

#[test]
fn storage_level_tampering_is_detected_and_localized() {
    let spec = ScenarioSpec::paper_testbed(402)
        .with_horizon(SimDuration::from_secs(60))
        .with_verification_window(SimDuration::from_secs(5));
    let mut report = Experiment::new(spec).run().unwrap();
    let addr = ScenarioSpec::network_addr(0);
    let anchor = report.world().aggregator(addr).unwrap().ledger_anchor();

    // An attacker with storage access rewrites one committed record to claim
    // almost no consumption.
    let aggregator = report.world_mut().aggregator_mut(addr).unwrap();
    let victim_block = 3;
    let forged = LedgerEntry {
        device_id: 1,
        collected_by: addr.0,
        billed_by: addr.0,
        sequence: 0,
        interval_start_us: 0,
        interval_end_us: 100_000,
        charge_uas: 1,
        backfilled: false,
    };
    let tampered = aggregator
        .ledger_mut_for_experiment()
        .chain_mut_for_experiment()
        .block_mut_for_experiment(victim_block)
        .expect("block exists")
        .tamper_record_for_experiment(0, forged.to_bytes());
    assert!(tampered);

    let aggregator = report.world().aggregator(addr).unwrap();
    let audit = audit_chain(aggregator.ledger().chain(), Some(anchor));
    assert!(!audit.is_clean());
    assert_eq!(audit.first_bad_block(), Some(victim_block));
    assert_eq!(audit.count_of(FindingKind::RecordMismatch), 1);
    // The cached per-device accounts no longer match the chain either.
    assert!(!aggregator.ledger().accounts_match_chain());
}

#[test]
fn under_reporting_device_trips_the_window_verifier() {
    // A device whose firmware under-reports cannot be caught by the hash
    // chain (the lie is signed in); it is caught by the aggregator's
    // complementary system-level measurement instead.
    use rtem::aggregator::aggregator::{Aggregator, AggregatorConfig};
    use rtem::net::packet::{MeasurementRecord, Packet};

    let mut aggregator = Aggregator::new(
        AggregatorConfig::testbed(AggregatorAddr(1)),
        SimRng::seed_from_u64(403),
    );
    aggregator
        .register_master(DeviceId(1), SimTime::ZERO)
        .unwrap();

    let mut anomalous_windows = 0;
    for window in 0..10u64 {
        let records: Vec<MeasurementRecord> = (0..10)
            .map(|i| {
                let seq = window * 10 + i;
                MeasurementRecord {
                    device: DeviceId(1),
                    sequence: seq,
                    interval_start_us: seq * 100_000,
                    interval_end_us: (seq + 1) * 100_000,
                    // The device claims 80 mA...
                    mean_current_ua: 80_000,
                    charge_uas: 8_000,
                    backfilled: false,
                }
            })
            .collect();
        aggregator.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records,
            },
            SimTime::from_secs(window + 1),
        );
        // ...while the aggregator's own meter sees 200 mA flowing.
        for s in 0..10u64 {
            aggregator.observe_upstream(
                SimTime::from_millis(window * 1000 + s * 100),
                Milliamps::new(200.0),
            );
        }
        if let Some(verdict) = aggregator.end_window(SimTime::from_secs(window + 1)) {
            if verdict.anomalous {
                anomalous_windows += 1;
            }
        }
    }
    assert_eq!(
        anomalous_windows, 10,
        "every under-reported window is flagged"
    );
    // The ledger itself still verifies — which is exactly why the
    // complementary measurement is needed.
    assert!(aggregator.ledger().chain().verify().is_ok());
}
