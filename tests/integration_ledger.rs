//! Integration test: tamper-evident storage — the architecture's claim that
//! "by encapsulating the consumption data into a blockchain, data storage is
//! made tamper-proof" (§II-A), exercised through a full simulated run.

use rtem_chain::audit::{audit_chain, FindingKind};
use rtem_chain::ledger::LedgerEntry;
use rtem_core::scenario::ScenarioBuilder;
use rtem_sim::time::{SimDuration, SimTime};

#[test]
fn ledgers_audit_clean_after_a_normal_run() {
    let mut world = ScenarioBuilder::paper_testbed(401)
        .with_verification_window(SimDuration::from_secs(5))
        .build();
    world.run_until(SimTime::from_secs(60));
    for addr in world.network_addresses() {
        let aggregator = world.aggregator(addr).unwrap();
        let report = audit_chain(aggregator.ledger().chain(), Some(aggregator.ledger_anchor()));
        assert!(report.is_clean(), "ledger of {addr} must audit clean");
        assert!(report.blocks_examined > 5);
        assert!(report.records_examined > 100);
        assert!(aggregator.ledger().accounts_match_chain());
    }
}

#[test]
fn storage_level_tampering_is_detected_and_localized() {
    let mut world = ScenarioBuilder::paper_testbed(402)
        .with_verification_window(SimDuration::from_secs(5))
        .build();
    world.run_until(SimTime::from_secs(60));
    let addr = ScenarioBuilder::network_addr(0);
    let anchor = world.aggregator(addr).unwrap().ledger_anchor();

    // An attacker with storage access rewrites one committed record to claim
    // almost no consumption.
    let aggregator = world.aggregator_mut(addr).unwrap();
    let victim_block = 3;
    let forged = LedgerEntry {
        device_id: 1,
        collected_by: addr.0,
        billed_by: addr.0,
        sequence: 0,
        interval_start_us: 0,
        interval_end_us: 100_000,
        charge_uas: 1,
        backfilled: false,
    };
    let tampered = aggregator
        .ledger_mut_for_experiment()
        .chain_mut_for_experiment()
        .block_mut_for_experiment(victim_block)
        .expect("block exists")
        .tamper_record_for_experiment(0, forged.to_bytes());
    assert!(tampered);

    let aggregator = world.aggregator(addr).unwrap();
    let report = audit_chain(aggregator.ledger().chain(), Some(anchor));
    assert!(!report.is_clean());
    assert_eq!(report.first_bad_block(), Some(victim_block));
    assert_eq!(report.count_of(FindingKind::RecordMismatch), 1);
    // The cached per-device accounts no longer match the chain either.
    assert!(!aggregator.ledger().accounts_match_chain());
}

#[test]
fn under_reporting_device_trips_the_window_verifier() {
    // A device whose firmware under-reports cannot be caught by the hash
    // chain (the lie is signed in); it is caught by the aggregator's
    // complementary system-level measurement instead.
    use rtem_aggregator::aggregator::{Aggregator, AggregatorConfig};
    use rtem_net::packet::{AggregatorAddr, DeviceId, MeasurementRecord, Packet};
    use rtem_sensors::energy::Milliamps;
    use rtem_sim::rng::SimRng;

    let mut aggregator = Aggregator::new(
        AggregatorConfig::testbed(AggregatorAddr(1)),
        SimRng::seed_from_u64(403),
    );
    aggregator.register_master(DeviceId(1), SimTime::ZERO).unwrap();

    let mut anomalous_windows = 0;
    for window in 0..10u64 {
        let records: Vec<MeasurementRecord> = (0..10)
            .map(|i| {
                let seq = window * 10 + i;
                MeasurementRecord {
                    device: DeviceId(1),
                    sequence: seq,
                    interval_start_us: seq * 100_000,
                    interval_end_us: (seq + 1) * 100_000,
                    // The device claims 80 mA...
                    mean_current_ua: 80_000,
                    charge_uas: 8_000,
                    backfilled: false,
                }
            })
            .collect();
        aggregator.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records,
            },
            SimTime::from_secs(window + 1),
        );
        // ...while the aggregator's own meter sees 200 mA flowing.
        for s in 0..10u64 {
            aggregator.observe_upstream(
                SimTime::from_millis(window * 1000 + s * 100),
                Milliamps::new(200.0),
            );
        }
        if let Some(verdict) = aggregator.end_window(SimTime::from_secs(window + 1)) {
            if verdict.anomalous {
                anomalous_windows += 1;
            }
        }
    }
    assert_eq!(anomalous_windows, 10, "every under-reported window is flagged");
    // The ledger itself still verifies — which is exactly why the
    // complementary measurement is needed.
    assert!(aggregator.ledger().chain().verify().is_ok());
}
