//! Golden-snapshot locks for the meter-protocol codecs, in two directions:
//!
//! 1. The exact telegram bytes a short mixed-fleet run puts on the wire are
//!    SHA-256-locked (per codec family and overall) against
//!    `tests/fixtures/codec_golden.txt` — any change to an encoder, to the
//!    round-robin fleet assignment, or to the record stream shows up here.
//! 2. An *explicit* `MeterKind::Internal` fleet must reproduce the committed
//!    `scale_golden.txt` / `workload_golden.txt` digests bit-identically:
//!    opting into the codec axis with the internal kind is a no-op.
//!
//! Regenerate the telegram fixture deliberately with:
//!
//! ```bash
//! RTEM_UPDATE_GOLDEN=1 cargo test --test codec_golden
//! ```
//!
//! On mismatch, set `RTEM_DUMP_GOLDEN=1` to write the full telegram dump
//! next to the fixture for diffing.

use rtem::chain::sha256::Sha256;
use rtem::net::link::LinkConfig;
use rtem::prelude::*;
use std::path::PathBuf;

// Relative to this test's owning crate (`crates/rtem`), which declares the
// workspace-level tests via explicit `[[test]]` paths.
const FIXTURE: &str = "../../tests/fixtures/codec_golden.txt";

const CASE: &str = "mixed_fleet_2x2_12s";
const HORIZON_S: u64 = 12;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

/// Four devices, one per real protocol family, for a few reporting rounds.
fn mixed_fleet_spec() -> ScenarioSpec {
    ScenarioSpec::paper_testbed(2026)
        .with_horizon(SimDuration::from_secs(HORIZON_S))
        .with_meter_kinds(MeterKind::REAL.to_vec())
}

/// One line per telegram: time, device, codec family, hex bytes. `Debug`
/// on [`SimTime`] is microsecond-exact, so two dumps are equal iff every
/// telegram left the device at the same tick with the same bytes.
fn render_dump(log: &[rtem::simulation::TelegramLogEntry]) -> String {
    let mut out = String::new();
    for entry in log {
        let hex: String = entry.bytes.iter().map(|b| format!("{b:02x}")).collect();
        out.push_str(&format!(
            "{:?} dev={} {} {hex}\n",
            entry.at, entry.device.0, entry.kind
        ));
    }
    out
}

#[test]
fn mixed_fleet_telegram_bytes_match_committed_fixture() {
    let spec = mixed_fleet_spec();
    let mut world = Experiment::new(spec)
        .build_world()
        .expect("golden spec is valid");
    world.enable_telegram_log();
    world.run_until(SimTime::from_secs(HORIZON_S));
    let log = world.take_telegram_log();

    // Sanity before locking bytes: the fleet actually spoke, every family
    // is represented, and the log accounts for every wire byte.
    assert!(!log.is_empty(), "mixed fleet produced no telegrams");
    for kind in MeterKind::REAL {
        assert!(
            log.iter().any(|e| e.kind == kind),
            "no {kind} telegram in the dump"
        );
    }
    let wire = world.wire_stats();
    assert_eq!(
        log.iter().map(|e| e.bytes.len() as u64).sum::<u64>(),
        wire.telegram_bytes,
        "telegram log and wire stats disagree"
    );
    assert_eq!(wire.parse_failures, 0, "clean run must parse everything");

    let dump = render_dump(&log);
    let mut lines = vec![format!(
        "{CASE} all {}",
        Sha256::digest(dump.as_bytes()).to_hex()
    )];
    for kind in MeterKind::REAL {
        let of_kind: Vec<_> = log.iter().filter(|e| e.kind == kind).cloned().collect();
        lines.push(format!(
            "{CASE} {kind} {}",
            Sha256::digest(render_dump(&of_kind).as_bytes()).to_hex()
        ));
    }
    let produced = lines.join("\n") + "\n";

    let path = fixture_path();
    if std::env::var("RTEM_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &produced).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .expect("tests/fixtures/codec_golden.txt committed (RTEM_UPDATE_GOLDEN=1 to create)");
    if produced != committed {
        if std::env::var("RTEM_DUMP_GOLDEN").is_ok() {
            let dump_path = path.with_file_name("codec_golden.dump");
            std::fs::write(&dump_path, &dump).unwrap();
            eprintln!("dumped {}", dump_path.display());
        }
        panic!(
            "telegram bytes diverged from the committed golden snapshot.\n\
             produced:\n{produced}\ncommitted:\n{committed}\n\
             If the change is intentional, regenerate with RTEM_UPDATE_GOLDEN=1; \
             set RTEM_DUMP_GOLDEN=1 to write the full telegram dump for diffing."
        );
    }
}

/// Reads `<case> <digest>` out of a committed fixture file.
fn committed_digest(fixture: &str, case: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(fixture);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{fixture} must be committed: {e}"));
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{case} ")))
        .unwrap_or_else(|| panic!("{case} not found in {fixture}"))
        .to_string()
}

// The two committed-golden specs, copied verbatim from their owning tests
// (`tests/scale_determinism.rs`, `tests/workload_determinism.rs`) so this
// test fails loudly if either drifts.

fn kitchen_sink_spec() -> ScenarioSpec {
    let mobile = ScenarioSpec::device_id(0, 0);
    let dest = ScenarioSpec::network_addr(3);
    let plan = FaultPlan::new()
        .sensor_stuck_at(SimTime::from_secs(20), ScenarioSpec::device_id(1, 2), 5.0)
        .tamper_at(SimTime::from_secs(25), ScenarioSpec::network_addr(1))
        .link_burst(
            SimTime::from_secs(30),
            SimTime::from_secs(40),
            LinkTarget::Wifi {
                network: Some(ScenarioSpec::network_addr(2)),
            },
            LinkConfig {
                loss_probability: 0.6,
                ..LinkConfig::wifi()
            },
        );
    ScenarioSpec::paper_testbed(777)
        .with_networks(3)
        .with_devices_per_network(8)
        .with_empty_networks(1)
        .with_horizon(SimDuration::from_secs(60))
        .unplug_at(SimTime::from_secs(22), mobile)
        .plug_in_at(SimTime::from_secs(32), mobile, dest)
        .with_fault_plan(plan)
}

fn demand_charge_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::paper_testbed(77)
        .with_devices_per_network(3)
        .with_workload(WorkloadModel::neighborhood())
        .with_tariff(Tariff::DemandCharge {
            price_per_mwh: 1.0,
            demand_price_per_ma: 0.05,
            window: SimDuration::from_secs(900),
        })
        .with_horizon(SimDuration::from_secs(6 * 3600))
        .with_verification_window(SimDuration::from_secs(1800));
    spec.t_measure = SimDuration::from_secs(1);
    spec.upstream_sample_interval = SimDuration::from_secs(1);
    spec
}

#[test]
fn explicit_internal_kind_reproduces_scale_golden_bit_identically() {
    let spec = kitchen_sink_spec().with_meter_kinds(vec![MeterKind::Internal]);
    let report = Experiment::new(spec).run().expect("golden spec is valid");
    // Same rendering as tests/scale_determinism.rs.
    let rendering = format!(
        "metrics: {:#?}\naccuracy: {:#?}\nhandshakes: {:#?}\nledgers: {:#?}\nbills: {:#?}\nresilience: {:#?}\nfault_records: {:#?}\n",
        report.metrics,
        report.accuracy,
        report.handshakes,
        report.ledgers,
        report.bills,
        report.resilience,
        report.world().fault_records(),
    );
    assert_eq!(
        Sha256::digest(rendering.as_bytes()).to_hex(),
        committed_digest("../../tests/fixtures/scale_golden.txt", "kitchen_sink_3x8"),
        "MeterKind::Internal must leave the scale golden bit-identical"
    );
}

#[test]
fn explicit_internal_kind_reproduces_workload_golden_bit_identically() {
    let spec = demand_charge_spec().with_meter_kinds(vec![MeterKind::Internal]);
    let report = Experiment::new(spec).run().expect("golden spec is valid");
    // Same rendering as tests/workload_determinism.rs.
    let rendering = format!(
        "metrics: {:#?}\naccuracy: {:#?}\nhandshakes: {:#?}\nledgers: {:#?}\nbills: {:#?}\n",
        report.metrics, report.accuracy, report.handshakes, report.ledgers, report.bills,
    );
    assert_eq!(
        Sha256::digest(rendering.as_bytes()).to_hex(),
        committed_digest(
            "../../tests/fixtures/workload_golden.txt",
            "demand_charge_6h"
        ),
        "MeterKind::Internal must leave the workload golden bit-identical"
    );
}
