//! Shard-count and retention invariance: the sharded event loop and the
//! streaming-compaction retention policy are pure performance knobs. Any
//! shard count must reproduce the single-shard run bit for bit — including
//! against the *committed* golden fixtures — and a bounded-memory run must
//! reproduce the keep-all digests while actually shrinking resident state.

use rtem::chain::sha256::Sha256;
use rtem::net::link::LinkConfig;
use rtem::prelude::*;
use std::path::PathBuf;

// Relative to this test's owning crate (`crates/rtem`), which declares the
// workspace-level tests via explicit `[[test]]` paths.
const SCALE_FIXTURE: &str = "../../tests/fixtures/scale_golden.txt";
const CONTROL_FIXTURE: &str = "../../tests/fixtures/control_golden.txt";

/// Canonical text rendering, identical to `scale_determinism::render` so
/// digests are comparable against the committed scale fixture.
fn render(report: &RunReport) -> String {
    format!(
        "metrics: {:#?}\naccuracy: {:#?}\nhandshakes: {:#?}\nledgers: {:#?}\nbills: {:#?}\nresilience: {:#?}\nfault_records: {:#?}\n",
        report.metrics,
        report.accuracy,
        report.handshakes,
        report.ledgers,
        report.bills,
        report.resilience,
        report.world().fault_records(),
    )
}

fn digest(report: &RunReport) -> String {
    Sha256::digest(render(report).as_bytes()).to_hex()
}

/// Rendering with the control-plane accounting appended, identical to
/// `control_determinism::render_with_control`.
fn digest_with_control(report: &RunReport) -> String {
    let rendering = format!(
        "{}control: {:#?}\n",
        render(report),
        report.control.as_ref().expect("spec carries a plan")
    );
    Sha256::digest(rendering.as_bytes()).to_hex()
}

fn committed_digest(relative: &str, name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(relative);
    let committed = std::fs::read_to_string(&path).expect("golden fixture committed");
    committed
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} listed in {relative}"))
        .to_string()
}

/// The committed 200-device scale golden (`scale_determinism::fleet_spec`).
fn fleet_spec() -> ScenarioSpec {
    ScenarioSpec::single_network(200, 4242).with_horizon(SimDuration::from_secs(60))
}

/// The committed everything-at-once golden
/// (`scale_determinism::kitchen_sink_spec`): multi-network topology,
/// scripted roaming into an empty network, sensor/tamper/link faults.
fn kitchen_sink_spec() -> ScenarioSpec {
    let mobile = ScenarioSpec::device_id(0, 0);
    let dest = ScenarioSpec::network_addr(3);
    let plan = FaultPlan::new()
        .sensor_stuck_at(SimTime::from_secs(20), ScenarioSpec::device_id(1, 2), 5.0)
        .tamper_at(SimTime::from_secs(25), ScenarioSpec::network_addr(1))
        .link_burst(
            SimTime::from_secs(30),
            SimTime::from_secs(40),
            LinkTarget::Wifi {
                network: Some(ScenarioSpec::network_addr(2)),
            },
            LinkConfig {
                loss_probability: 0.6,
                ..LinkConfig::wifi()
            },
        );
    ScenarioSpec::paper_testbed(777)
        .with_networks(3)
        .with_devices_per_network(8)
        .with_empty_networks(1)
        .with_horizon(SimDuration::from_secs(60))
        .unplug_at(SimTime::from_secs(22), mobile)
        .plug_in_at(SimTime::from_secs(32), mobile, dest)
        .with_fault_plan(plan)
}

/// The committed control-plane golden
/// (`control_determinism::commanded_spec`): a staged Tmeasure rollout, a
/// retained QoS 2 site command and a mute/resume round-trip.
fn commanded_spec() -> ScenarioSpec {
    let t = SimTime::from_secs;
    let site = ScenarioSpec::network_addr(1);
    let dev = ScenarioSpec::device_id(0, 1);
    let plan = ControlPlan::new()
        .staged_rollout(
            t(20),
            SimDuration::from_secs(5),
            &[50, 100],
            FleetCommand::SetMeasureInterval {
                interval: SimDuration::from_millis(500),
            },
            QoS::AtLeastOnce,
            false,
        )
        .command_with(
            t(28),
            CommandTarget::Site(site),
            FleetCommand::SetTariffHint(TariffHint::flat(2.5)),
            QoS::ExactlyOnce,
            true,
        )
        .stop_reporting(t(32), CommandTarget::Device(dev))
        .start_reporting(t(40), CommandTarget::Device(dev));
    ScenarioSpec::paper_testbed(4242)
        .with_horizon(SimDuration::from_secs(55))
        .with_control_plan(plan)
}

/// A heterogeneous meter-protocol fleet: every real codec on the wire.
fn codec_spec() -> ScenarioSpec {
    ScenarioSpec::single_network(100, 9001)
        .with_horizon(SimDuration::from_secs(30))
        .with_meter_kinds(MeterKind::REAL.to_vec())
}

#[test]
fn scale_goldens_are_shard_count_invariant() {
    // 2- and 4-shard runs of the committed golden scenarios must hash to
    // the exact digests in the committed fixture — not merely match each
    // other, but match the sequential history bit for bit.
    for (name, spec) in [
        ("fleet_200x60s", fleet_spec()),
        ("kitchen_sink_3x8", kitchen_sink_spec()),
    ] {
        let committed = committed_digest(SCALE_FIXTURE, name);
        for shards in [2, 4] {
            let report = Experiment::new(spec.clone().with_shards(shards))
                .run()
                .expect("golden specs are valid");
            assert_eq!(
                digest(&report),
                committed,
                "{name} diverged from the committed golden at {shards} shards"
            );
        }
    }
}

#[test]
fn control_golden_is_shard_count_invariant() {
    let committed = committed_digest(CONTROL_FIXTURE, "commanded_testbed");
    for shards in [2, 4] {
        let report = Experiment::new(commanded_spec().with_shards(shards))
            .run()
            .expect("golden spec is valid");
        assert_eq!(
            digest_with_control(&report),
            committed,
            "commanded run diverged from the committed golden at {shards} shards"
        );
    }
}

#[test]
fn codec_fleet_is_shard_count_invariant() {
    let single = Experiment::new(codec_spec()).run().expect("valid spec");
    let reference = digest(&single);
    for shards in [2, 4] {
        let sharded = Experiment::new(codec_spec().with_shards(shards))
            .run()
            .expect("valid spec");
        assert_eq!(
            digest(&sharded),
            reference,
            "mixed-codec fleet diverged at {shards} shards"
        );
    }
}

#[test]
fn bounded_memory_reproduces_keep_all_digests() {
    // Streaming compaction must change nothing the report can see: the
    // sealed-summary chain stands in for the evicted blocks and samples
    // exactly. Checked on the fleet cell and on a roaming multi-network
    // scenario (no fault plan: scheduled tampers address blocks by index,
    // which a bounded run may have evicted — that pairing is unsupported).
    let roaming = {
        let mobile = ScenarioSpec::device_id(0, 0);
        let dest = ScenarioSpec::network_addr(3);
        ScenarioSpec::paper_testbed(777)
            .with_networks(3)
            .with_devices_per_network(8)
            .with_empty_networks(1)
            .with_horizon(SimDuration::from_secs(60))
            .unplug_at(SimTime::from_secs(22), mobile)
            .plug_in_at(SimTime::from_secs(32), mobile, dest)
    };
    for (name, spec) in [("fleet", fleet_spec()), ("roaming", roaming)] {
        let keep_all = Experiment::new(spec.clone()).run().expect("valid spec");
        let bounded = Experiment::new(spec.clone().with_bounded_memory(2))
            .run()
            .expect("valid spec");
        assert_eq!(
            digest(&keep_all),
            digest(&bounded),
            "{name}: bounded-memory run diverged from keep-all"
        );
        // And the bound must be real: fewer resident blocks and samples
        // than the keep-all run, with the evicted prefix accounted for.
        let addr = ScenarioSpec::network_addr(0);
        let full = keep_all.world().aggregator(addr).expect("network exists");
        let compact = bounded.world().aggregator(addr).expect("network exists");
        let (full_blocks, full_samples) = full.resident_footprint();
        let (kept_blocks, kept_samples) = compact.resident_footprint();
        assert!(
            kept_blocks < full_blocks,
            "{name}: eviction retained all {full_blocks} blocks"
        );
        assert!(
            kept_samples < full_samples,
            "{name}: pruning retained all {full_samples} samples"
        );
        assert_eq!(
            full.ledger().chain().len(),
            compact.ledger().chain().len(),
            "{name}: logical chain length must include the evicted prefix"
        );
    }
}

#[test]
fn bounded_memory_is_shard_count_invariant() {
    // The two tentpole halves compose: a sharded bounded-memory run still
    // reproduces the sequential keep-all digest.
    let reference = digest(&Experiment::new(fleet_spec()).run().expect("valid spec"));
    let report = Experiment::new(fleet_spec().with_bounded_memory(2).with_shards(4))
        .run()
        .expect("valid spec");
    assert_eq!(
        digest(&report),
        reference,
        "sharded bounded-memory run diverged from the sequential keep-all run"
    );
}

#[test]
fn cross_shard_delivery_order_is_deterministic() {
    // Property: over several seeds of a roaming two-network scenario, the
    // full telemetry trace — every dispatch span and every notification
    // instant (handshakes, roaming plug-ins, block seals, consensus
    // milestones), in dispatch order — is identical at 1, 2 and 4 shards.
    // Cross-shard traffic (uplinks staged through the broker, backhaul
    // roaming handoffs) must drain in one deterministic order however the
    // compute was fanned out.
    for seed in [11, 23, 47] {
        let mobile = ScenarioSpec::device_id(0, 0);
        let dest = ScenarioSpec::network_addr(1);
        let spec = ScenarioSpec::paper_testbed(seed)
            .with_networks(2)
            .with_devices_per_network(20)
            .with_horizon(SimDuration::from_secs(30))
            .unplug_at(SimTime::from_secs(12), mobile)
            .plug_in_at(SimTime::from_secs(15), mobile, dest)
            .with_telemetry(TelemetryConfig::default().with_trace(true));
        let runs: Vec<RunReport> = [1usize, 2, 4]
            .into_iter()
            .map(|shards| {
                Experiment::new(spec.clone().with_shards(shards))
                    .run()
                    .expect("valid spec")
            })
            .collect();
        let reference = runs[0]
            .telemetry
            .as_ref()
            .and_then(|t| t.trace.as_ref())
            .expect("trace enabled");
        assert!(!reference.is_empty(), "seed {seed}: trace recorded events");
        for (report, shards) in runs[1..].iter().zip([2, 4]) {
            let trace = report
                .telemetry
                .as_ref()
                .and_then(|t| t.trace.as_ref())
                .expect("trace enabled");
            assert_eq!(
                reference, trace,
                "seed {seed}: event/notification order diverged at {shards} shards"
            );
        }
        // The deterministic snapshot stream (queue depths, per-kind
        // dispatch tallies) must agree too.
        let snapshots = |r: &RunReport| {
            r.telemetry
                .as_ref()
                .map(|t| t.snapshots.clone())
                .expect("telemetry enabled")
        };
        assert_eq!(snapshots(&runs[0]), snapshots(&runs[1]), "seed {seed}");
        assert_eq!(snapshots(&runs[0]), snapshots(&runs[2]), "seed {seed}");
    }
}
