//! Telemetry is strictly observational: enabling it — at any snapshot
//! interval, with trace and profiler on or off — must not perturb a run's
//! observable output by one bit. Every committed golden fixture
//! (`scale_golden.txt`, `control_golden.txt`, `codec_golden.txt`) is
//! re-verified here with telemetry enabled, and the telemetry artifacts
//! themselves (snapshot grid, Chrome trace) are checked for determinism.
//!
//! The fixtures are owned by their original tests; this file never
//! regenerates them, so a digest mismatch here means telemetry leaked into
//! simulated state.

use rtem::chain::sha256::Sha256;
use rtem::net::link::LinkConfig;
use rtem::prelude::*;
use std::path::PathBuf;

/// Reads `<case> <digest>` out of a committed fixture file.
fn committed_digest(fixture: &str, case: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(fixture);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{fixture} must be committed: {e}"));
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{case} ")))
        .unwrap_or_else(|| panic!("{case} not found in {fixture}"))
        .to_string()
}

/// Same rendering as tests/scale_determinism.rs — telemetry is deliberately
/// absent: goldens lock the simulation outcome, not the observation of it.
fn render(report: &RunReport) -> String {
    format!(
        "metrics: {:#?}\naccuracy: {:#?}\nhandshakes: {:#?}\nledgers: {:#?}\nbills: {:#?}\nresilience: {:#?}\nfault_records: {:#?}\n",
        report.metrics,
        report.accuracy,
        report.handshakes,
        report.ledgers,
        report.bills,
        report.resilience,
        report.world().fault_records(),
    )
}

fn digest(report: &RunReport) -> String {
    Sha256::digest(render(report).as_bytes()).to_hex()
}

/// Verbatim copy of the scale golden's kitchen-sink scenario.
fn kitchen_sink_spec() -> ScenarioSpec {
    let mobile = ScenarioSpec::device_id(0, 0);
    let dest = ScenarioSpec::network_addr(3);
    let plan = FaultPlan::new()
        .sensor_stuck_at(SimTime::from_secs(20), ScenarioSpec::device_id(1, 2), 5.0)
        .tamper_at(SimTime::from_secs(25), ScenarioSpec::network_addr(1))
        .link_burst(
            SimTime::from_secs(30),
            SimTime::from_secs(40),
            LinkTarget::Wifi {
                network: Some(ScenarioSpec::network_addr(2)),
            },
            LinkConfig {
                loss_probability: 0.6,
                ..LinkConfig::wifi()
            },
        );
    ScenarioSpec::paper_testbed(777)
        .with_networks(3)
        .with_devices_per_network(8)
        .with_empty_networks(1)
        .with_horizon(SimDuration::from_secs(60))
        .unplug_at(SimTime::from_secs(22), mobile)
        .plug_in_at(SimTime::from_secs(32), mobile, dest)
        .with_fault_plan(plan)
}

/// Verbatim copy of the control golden's commanded scenario.
fn commanded_spec() -> ScenarioSpec {
    let t = SimTime::from_secs;
    let site = ScenarioSpec::network_addr(1);
    let dev = ScenarioSpec::device_id(0, 1);
    let plan = ControlPlan::new()
        .staged_rollout(
            t(20),
            SimDuration::from_secs(5),
            &[50, 100],
            FleetCommand::SetMeasureInterval {
                interval: SimDuration::from_millis(500),
            },
            QoS::AtLeastOnce,
            false,
        )
        .command_with(
            t(28),
            CommandTarget::Site(site),
            FleetCommand::SetTariffHint(TariffHint::flat(2.5)),
            QoS::ExactlyOnce,
            true,
        )
        .stop_reporting(t(32), CommandTarget::Device(dev))
        .start_reporting(t(40), CommandTarget::Device(dev));
    ScenarioSpec::paper_testbed(4242)
        .with_horizon(SimDuration::from_secs(55))
        .with_control_plan(plan)
}

#[test]
fn scale_golden_is_bit_identical_under_telemetry_at_two_intervals() {
    let committed = committed_digest("../../tests/fixtures/scale_golden.txt", "kitchen_sink_3x8");
    for interval_s in [1, 7] {
        let config =
            TelemetryConfig::full().with_snapshot_interval(SimDuration::from_secs(interval_s));
        let report = Experiment::new(kitchen_sink_spec().with_telemetry(config))
            .run()
            .expect("golden spec is valid");
        assert_eq!(
            digest(&report),
            committed,
            "telemetry at a {interval_s} s snapshot interval perturbed the scale golden"
        );
        let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
        assert!(
            !telemetry.snapshots.is_empty(),
            "the run must actually have snapshotted"
        );
        assert!(telemetry.trace.is_some() && telemetry.profile.is_some());
    }
}

#[test]
fn control_golden_is_bit_identical_under_telemetry_at_two_intervals() {
    let committed = committed_digest(
        "../../tests/fixtures/control_golden.txt",
        "commanded_testbed",
    );
    for interval_s in [3, 10] {
        let config =
            TelemetryConfig::default().with_snapshot_interval(SimDuration::from_secs(interval_s));
        let report = Experiment::new(commanded_spec().with_telemetry(config))
            .run()
            .expect("golden spec is valid");
        // Same rendering as tests/control_determinism.rs.
        let rendering = format!(
            "{}control: {:#?}\n",
            render(&report),
            report.control.as_ref().expect("spec carries a plan")
        );
        assert_eq!(
            Sha256::digest(rendering.as_bytes()).to_hex(),
            committed,
            "telemetry at a {interval_s} s snapshot interval perturbed the control golden"
        );
    }
}

#[test]
fn codec_golden_telegram_bytes_are_bit_identical_under_telemetry() {
    // Same scenario and rendering as tests/codec_golden.rs, with full
    // telemetry layered on top of the telegram log.
    let spec = ScenarioSpec::paper_testbed(2026)
        .with_horizon(SimDuration::from_secs(12))
        .with_meter_kinds(MeterKind::REAL.to_vec())
        .with_telemetry(TelemetryConfig::full().with_snapshot_interval(SimDuration::from_secs(2)));
    let mut world = Experiment::new(spec)
        .build_world()
        .expect("golden spec is valid");
    world.enable_telegram_log();
    world.run_until(SimTime::from_secs(12));
    let log = world.take_telegram_log();
    let mut dump = String::new();
    for entry in &log {
        let hex: String = entry.bytes.iter().map(|b| format!("{b:02x}")).collect();
        dump.push_str(&format!(
            "{:?} dev={} {} {hex}\n",
            entry.at, entry.device.0, entry.kind
        ));
    }
    let committed = committed_digest(
        "../../tests/fixtures/codec_golden.txt",
        "mixed_fleet_2x2_12s all",
    );
    assert_eq!(
        Sha256::digest(dump.as_bytes()).to_hex(),
        committed,
        "telemetry perturbed the telegram byte stream"
    );
}

#[test]
fn snapshots_land_on_the_interval_grid_in_order() {
    let interval = SimDuration::from_secs(5);
    let horizon = SimDuration::from_secs(32);
    let spec = ScenarioSpec::paper_testbed(11)
        .with_horizon(horizon)
        .with_telemetry(TelemetryConfig::default().with_snapshot_interval(interval));
    let report = Experiment::new(spec).run().expect("valid spec");
    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");

    // 32 s horizon / 5 s interval: snapshots at 5,10,...,30 — six of them.
    assert_eq!(telemetry.snapshots.len(), 6);
    for (i, snapshot) in telemetry.snapshots.iter().enumerate() {
        assert_eq!(snapshot.seq, i as u64, "sequence numbers are dense");
        assert_eq!(
            snapshot.at,
            SimTime::ZERO + SimDuration::from_secs(5 * (i as u64 + 1)),
            "snapshot {i} is off the grid"
        );
    }
    for pair in telemetry.snapshots.windows(2) {
        assert!(pair[0].at < pair[1].at, "timestamps are strictly monotone");
        for id in MetricId::ALL {
            let cumulative_ok = pair[0].fleet.get(id) <= pair[1].fleet.get(id);
            // Gauges may go down; cumulative counters never do. Spot-check
            // the pure counters.
            if matches!(
                id,
                MetricId::SchedulerEventsDispatched
                    | MetricId::BrokerPublishes
                    | MetricId::DeviceMeasureTicks
            ) {
                assert!(cumulative_ok, "{id:?} regressed between snapshots");
            }
        }
    }
    // The terminal snapshot is stamped at the horizon, after the last grid
    // point.
    assert_eq!(telemetry.final_snapshot.at, SimTime::ZERO + horizon);
    assert!(telemetry.final_snapshot.seq >= telemetry.snapshots.len() as u64);
}

#[test]
fn probe_streams_the_same_snapshots_the_report_keeps() {
    #[derive(Default)]
    struct SnapshotProbe {
        seen: Vec<(SimTime, u64)>,
    }
    impl Probe for SnapshotProbe {
        fn on_metrics(&mut self, at: SimTime, snapshot: &MetricsSnapshot) {
            self.seen.push((at, snapshot.seq));
        }
    }
    let spec = ScenarioSpec::paper_testbed(11)
        .with_horizon(SimDuration::from_secs(25))
        .with_telemetry(
            TelemetryConfig::default().with_snapshot_interval(SimDuration::from_secs(5)),
        );
    let handle = Experiment::new(spec)
        .start_probed(SnapshotProbe::default())
        .unwrap();
    let (report, probe) = handle.finish_probed();
    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
    let kept: Vec<(SimTime, u64)> = telemetry.snapshots.iter().map(|s| (s.at, s.seq)).collect();
    assert_eq!(probe.seen, kept, "probe stream and report disagree");
}

#[test]
fn chrome_trace_is_valid_json_and_stable_across_same_seed_runs() {
    let run = || {
        let spec = ScenarioSpec::paper_testbed(99)
            .with_horizon(SimDuration::from_secs(20))
            .with_telemetry(
                TelemetryConfig::full().with_snapshot_interval(SimDuration::from_secs(4)),
            );
        Experiment::new(spec).run().expect("valid spec")
    };
    let first = run();
    let second = run();
    let trace_a = first
        .telemetry
        .as_ref()
        .and_then(|t| t.trace.as_ref())
        .expect("trace was enabled");
    let trace_b = second
        .telemetry
        .as_ref()
        .and_then(|t| t.trace.as_ref())
        .expect("trace was enabled");
    assert!(!trace_a.is_empty(), "the run must have recorded spans");

    let json = trace_a.to_chrome_json();
    assert_eq!(
        json,
        trace_b.to_chrome_json(),
        "same-seed traces must render byte-identically"
    );
    // Spans on simulated time, notification instants interleaved.
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""), "scheduler spans present");
    assert!(
        json.contains("\"ph\":\"i\""),
        "notification instants present"
    );
    assert!(json.contains("\"cat\":\"scheduler\""));
    assert!(json.contains("\"cat\":\"notification\""));
    assert_valid_json(&json);

    // JSONL export: every line is one object.
    let jsonl = trace_a.to_jsonl();
    assert_eq!(jsonl.lines().count(), trace_a.len());
    for line in jsonl.lines() {
        assert_valid_json(line);
    }

    // Timestamps never exceed the horizon (they are simulated time).
    assert!(trace_a.events().iter().all(|e| e.ts_us <= 20_000_000));
}

/// A minimal structural JSON validator: brace/bracket balance outside
/// strings, legal escapes, non-empty. Enough to guarantee the export loads
/// in a real parser without vendoring one here.
fn assert_valid_json(text: &str) {
    let mut stack = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            } else {
                assert!(c >= ' ', "raw control character inside JSON string");
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => stack.push(c),
            '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced brace"),
            ']' => assert_eq!(stack.pop(), Some('['), "unbalanced bracket"),
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string");
    assert!(stack.is_empty(), "unclosed {stack:?}");
    assert!(
        text.starts_with('{') || text.starts_with('['),
        "JSON document must be an object or array"
    );
}

#[test]
fn run_report_dumps_selected_series_as_csv() {
    let spec = ScenarioSpec::paper_testbed(11)
        .with_horizon(SimDuration::from_secs(30))
        .with_telemetry(
            TelemetryConfig::default().with_snapshot_interval(SimDuration::from_secs(5)),
        );
    let report = Experiment::new(spec).run().expect("valid spec");
    let csv = report.telemetry_csv().expect("telemetry was enabled");
    // One block per network queue-depth series plus one per network
    // overhead series, each with the TimeSeries header.
    assert!(csv.contains("broker_session_queue_depth"));
    assert!(csv.contains("overhead_percent"));
    assert!(csv.contains("time_s,value"));
    let header_blocks = csv.lines().filter(|l| l.starts_with("# ")).count();
    assert!(header_blocks >= 4, "2 networks x 2 series expected");

    // Without telemetry there is nothing to dump.
    let plain =
        Experiment::new(ScenarioSpec::paper_testbed(11).with_horizon(SimDuration::from_secs(10)))
            .run()
            .expect("valid spec");
    assert!(plain.telemetry_csv().is_none());
}
