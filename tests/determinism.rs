//! Determinism regression: the whole point of replacing the paper's hardware
//! testbed with a simulation is exact reproducibility — two runs of the same
//! [`ScenarioSpec`] (same seed) must produce identical results.

use rtem::prelude::*;

fn run(spec: ScenarioSpec) -> RunReport {
    Experiment::new(spec).run().unwrap()
}

#[test]
fn same_seed_produces_identical_world_metrics() {
    let spec = ScenarioSpec::paper_testbed(9001).with_horizon(SimDuration::from_secs(40));
    let a = run(spec.clone());
    let b = run(spec);
    assert_eq!(a.metrics, b.metrics, "same spec + same seed = same metrics");
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.handshakes, b.handshakes);
    assert_eq!(a.ledgers, b.ledgers);
    assert_eq!(a.bills, b.bills);
}

#[test]
fn same_seed_is_deterministic_under_scripted_mobility() {
    let mobile = ScenarioSpec::device_id(0, 0);
    let spec = ScenarioSpec::paper_testbed(9002)
        .with_horizon(SimDuration::from_secs(70))
        .unplug_at(SimTime::from_secs(25), mobile)
        .plug_in_at(
            SimTime::from_secs(35),
            mobile,
            ScenarioSpec::network_addr(1),
        );
    let a = run(spec.clone());
    let b = run(spec);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.bills, b.bills);
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards against the determinism test passing vacuously because the
    // seed is ignored.
    let horizon = SimDuration::from_secs(40);
    let a = run(ScenarioSpec::paper_testbed(1).with_horizon(horizon));
    let b = run(ScenarioSpec::paper_testbed(2).with_horizon(horizon));
    assert_ne!(
        a.metrics, b.metrics,
        "different seeds must perturb the run (sensor noise, jitter)"
    );
}
