//! Property-style model tests for `LocalStore`'s offset ring.
//!
//! PR 4 rewrote the device-side store-and-forward buffer from a `Vec` with
//! `remove(0)` memmoves into an offset ring (head pointer + amortized
//! compaction) with only example-based coverage. These tests drive the ring
//! through long seeded sequences of every operation the device firmware
//! performs — push, drain-for-transmission, failed-transmission re-push,
//! acknowledge-through, crash-clear — and check each step against a naive
//! `Vec` model whose semantics are obviously correct.

use rtem::device::data_layer::{LocalStore, StoreOutcome};
use rtem::net::packet::{DeviceId, MeasurementRecord};
use rtem::sim::rng::SimRng;

/// The obviously-correct reference: a plain Vec with `remove(0)` semantics.
struct NaiveStore {
    capacity: usize,
    records: Vec<MeasurementRecord>,
    evicted: u64,
    total_stored: u64,
}

impl NaiveStore {
    fn new(capacity: usize) -> Self {
        NaiveStore {
            capacity,
            records: Vec::new(),
            evicted: 0,
            total_stored: 0,
        }
    }

    fn push(&mut self, record: MeasurementRecord) -> StoreOutcome {
        self.total_stored += 1;
        if self.records.len() == self.capacity {
            self.records.remove(0);
            self.evicted += 1;
            self.records.push(record);
            StoreOutcome::StoredEvictingOldest
        } else {
            self.records.push(record);
            StoreOutcome::Stored
        }
    }

    fn drain_for_transmission(&mut self, max: usize) -> Vec<MeasurementRecord> {
        let take = max.min(self.records.len());
        self.records
            .drain(..take)
            .map(|mut r| {
                r.backfilled = true;
                r
            })
            .collect()
    }

    fn acknowledge_through(&mut self, through_sequence: u64) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.sequence > through_sequence);
        before - self.records.len()
    }

    fn clear(&mut self) -> usize {
        let lost = self.records.len();
        self.records.clear();
        lost
    }
}

fn record(seq: u64) -> MeasurementRecord {
    MeasurementRecord {
        device: DeviceId(1),
        sequence: seq,
        interval_start_us: seq * 100_000,
        interval_end_us: (seq + 1) * 100_000,
        mean_current_ua: 100_000 + seq,
        charge_uas: 10_000 + seq,
        backfilled: false,
    }
}

/// Full observable-state comparison after every operation.
fn assert_equivalent(step: usize, ring: &LocalStore, model: &NaiveStore) {
    assert_eq!(ring.len(), model.records.len(), "len at step {step}");
    assert_eq!(
        ring.is_empty(),
        model.records.is_empty(),
        "is_empty at step {step}"
    );
    assert_eq!(ring.evicted(), model.evicted, "evicted at step {step}");
    assert_eq!(
        ring.total_stored(),
        model.total_stored,
        "total_stored at step {step}"
    );
    assert_eq!(
        ring.peek_all(),
        &model.records[..],
        "contents at step {step}"
    );
    assert_eq!(
        ring.buffered_charge_uas(),
        model.records.iter().map(|r| r.charge_uas).sum::<u64>(),
        "buffered charge at step {step}"
    );
}

/// One random operation sequence at the given seed and capacity.
fn run_sequence(seed: u64, capacity: usize, steps: usize) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut ring = LocalStore::new(capacity);
    let mut model = NaiveStore::new(capacity);
    let mut next_seq = 0u64;
    // Records drained but "lost in transmission", awaiting re-push.
    let mut in_flight: Vec<MeasurementRecord> = Vec::new();

    for step in 0..steps {
        match rng.next_below(100) {
            // Push the next measurement (the dominant operation).
            0..=54 => {
                let r = record(next_seq);
                next_seq += 1;
                assert_eq!(ring.push(r), model.push(r), "push outcome at step {step}");
            }
            // Drain a batch for transmission; it may later fail and re-push.
            55..=69 => {
                let max = rng.next_below(capacity as u64 + 2) as usize;
                let a = ring.drain_for_transmission(max);
                let b = model.drain_for_transmission(max);
                assert_eq!(a, b, "drained batch at step {step}");
                if rng.chance(0.4) {
                    // Transmission failed: the firmware re-pushes the batch
                    // (back-of-queue, marked backfilled) — this is the path
                    // that breaks sequence monotonicity inside the ring.
                    in_flight.extend(a);
                } // else: delivered, the ack will come as acknowledge_through
            }
            // Re-push a previously failed batch.
            70..=79 => {
                for r in in_flight.drain(..) {
                    assert_eq!(ring.push(r), model.push(r), "re-push at step {step}");
                }
            }
            // The aggregator acks through some sequence near the frontier.
            80..=94 => {
                let back = rng.next_below(2 * capacity as u64 + 1);
                let through = next_seq.saturating_sub(back);
                assert_eq!(
                    ring.acknowledge_through(through),
                    model.acknowledge_through(through),
                    "ack count at step {step}"
                );
            }
            // Rare firmware crash: the volatile buffer is lost.
            _ => {
                assert_eq!(ring.clear(), model.clear(), "clear count at step {step}");
                in_flight.clear();
            }
        }
        assert_equivalent(step, &ring, &model);
    }
}

#[test]
fn ring_matches_naive_model_across_seeds() {
    for seed in 0..12 {
        run_sequence(seed, 8, 600);
    }
}

#[test]
fn ring_matches_naive_model_at_tiny_capacity() {
    // Capacity 1 maximizes eviction churn: every second push evicts.
    for seed in 100..106 {
        run_sequence(seed, 1, 400);
    }
}

#[test]
fn ring_matches_naive_model_at_fleet_capacity() {
    // Larger rings with enough steps to wrap and trigger several
    // compactions (the deployed store holds 4096 records; these sizes hit
    // the same code paths orders of magnitude faster).
    run_sequence(7, 64, 3000);
    run_sequence(8, 512, 3000);
}

#[test]
fn sustained_eviction_is_the_unregistered_device_pattern() {
    // An unregistered device pushes forever and never drains: the store
    // must stay pinned at capacity, evicting one record per push, with
    // contents equal to the newest `capacity` records.
    let capacity = 32;
    let mut ring = LocalStore::new(capacity);
    for seq in 0..10_000u64 {
        ring.push(record(seq));
    }
    assert_eq!(ring.len(), capacity);
    assert_eq!(ring.evicted(), 10_000 - capacity as u64);
    let seqs: Vec<u64> = ring.peek_all().iter().map(|r| r.sequence).collect();
    let expected: Vec<u64> = (10_000 - capacity as u64..10_000).collect();
    assert_eq!(seqs, expected);
}

#[test]
fn integrity_digest_tracks_logical_contents_not_compaction_state() {
    // Two stores reaching the same logical contents through different
    // operation histories (and thus different head offsets) must agree on
    // the integrity digest and compare equal.
    let mut a = LocalStore::new(8);
    let mut b = LocalStore::new(8);
    for seq in 0..20u64 {
        a.push(record(seq));
    }
    a.acknowledge_through(15); // contents: 16..20 via offset bumps
    for seq in 16..20u64 {
        b.push(record(seq));
    }
    assert_eq!(a.peek_all(), b.peek_all());
    assert_eq!(a.integrity_digest(), b.integrity_digest());
    // Lifetime counters differ, so full equality must not hold...
    assert_ne!(
        a.evicted() + a.total_stored(),
        b.evicted() + b.total_stored()
    );
    // ...but the digest is over contents only.
    assert_eq!(a.len(), b.len());
}
