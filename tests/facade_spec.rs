//! Facade coverage: `ScenarioSpec` validation rejects degenerate scenarios
//! with typed errors, and the `Experiment` → `RunReport` pipeline exposes
//! every summary the evaluation needs.

use rtem::prelude::*;

#[test]
fn zero_networks_is_rejected() {
    let spec = ScenarioSpec::paper_testbed(1).with_networks(0);
    assert_eq!(spec.validate(), Err(SpecError::NoNetworks));
    assert_eq!(
        Experiment::new(spec).run().unwrap_err(),
        SpecError::NoNetworks
    );
}

#[test]
fn zero_devices_is_rejected() {
    let spec = ScenarioSpec::paper_testbed(1).with_devices_per_network(0);
    assert_eq!(spec.validate(), Err(SpecError::NoDevices));
    assert_eq!(
        Experiment::new(spec).run().unwrap_err(),
        SpecError::NoDevices
    );
}

#[test]
fn zero_length_horizon_is_rejected() {
    let spec = ScenarioSpec::paper_testbed(1).with_horizon(SimDuration::ZERO);
    assert_eq!(spec.validate(), Err(SpecError::ZeroHorizon));
    assert_eq!(
        Experiment::new(spec).run().unwrap_err(),
        SpecError::ZeroHorizon
    );
}

#[test]
fn degenerate_timing_is_rejected() {
    let mut spec = ScenarioSpec::paper_testbed(1);
    spec.t_measure = SimDuration::ZERO;
    assert_eq!(spec.validate(), Err(SpecError::ZeroMeasureInterval));
    let mut spec = ScenarioSpec::paper_testbed(1);
    spec.verification_window = SimDuration::ZERO;
    assert_eq!(spec.validate(), Err(SpecError::ZeroVerificationWindow));
}

#[test]
fn script_referencing_unknown_targets_is_rejected() {
    let spec = ScenarioSpec::paper_testbed(1).unplug_at(SimTime::from_secs(10), DeviceId(424242));
    assert!(matches!(
        spec.validate(),
        Err(SpecError::UnknownScriptDevice { .. })
    ));

    let spec = ScenarioSpec::paper_testbed(1).plug_in_at(
        SimTime::from_secs(10),
        ScenarioSpec::device_id(0, 0),
        AggregatorAddr(99),
    );
    assert!(matches!(
        spec.validate(),
        Err(SpecError::UnknownScriptNetwork { .. })
    ));
}

#[test]
fn script_beyond_horizon_is_rejected() {
    let spec = ScenarioSpec::paper_testbed(1)
        .with_horizon(SimDuration::from_secs(30))
        .unplug_at(SimTime::from_secs(31), ScenarioSpec::device_id(0, 0));
    assert!(matches!(
        spec.validate(),
        Err(SpecError::ScriptEventAfterHorizon { .. })
    ));
    // An event at exactly the horizon still executes (run_until is
    // inclusive), so it must validate.
    let spec = ScenarioSpec::paper_testbed(1)
        .with_horizon(SimDuration::from_secs(30))
        .unplug_at(SimTime::from_secs(30), ScenarioSpec::device_id(0, 0));
    assert_eq!(spec.validate(), Ok(()));
}

#[test]
fn spec_errors_have_readable_messages() {
    assert!(SpecError::NoNetworks.to_string().contains("zero networks"));
    assert!(SpecError::ZeroHorizon.to_string().contains("horizon"));
}

#[test]
fn empty_networks_exist_but_hold_no_devices() {
    let spec = ScenarioSpec::single_network(2, 5)
        .with_horizon(SimDuration::from_secs(20))
        .with_empty_networks(2);
    assert_eq!(spec.network_addrs().len(), 3);
    let report = Experiment::new(spec).run().unwrap();
    assert_eq!(report.metrics.networks.len(), 3);
    let empty = report
        .metrics
        .network(ScenarioSpec::network_addr(2))
        .expect("empty network exists");
    assert_eq!(empty.members, 0);
}

#[test]
fn report_bundles_every_summary() {
    let spec = ScenarioSpec::paper_testbed(55).with_horizon(SimDuration::from_secs(30));
    let report = Experiment::new(spec).run().unwrap();

    // World metrics and per-network drill-down.
    assert_eq!(report.metrics.networks.len(), 2);
    for addr in [ScenarioSpec::network_addr(0), ScenarioSpec::network_addr(1)] {
        assert!(report.metrics.network(addr).is_some());
        assert!(report.network_accuracy(addr).is_some());
        assert!(report.ledger(addr).is_some());
    }
    // Handshake statistics cover all four devices.
    assert_eq!(report.handshakes.unwrap().count, 4);
    // Bills exist for every device and roaming never exceeds the total.
    assert_eq!(report.bills.len(), 4);
    for bill in &report.bills {
        assert!(bill.charge_uas >= bill.roaming_charge_uas);
        assert!(bill.energy_at(Millivolts::usb_bus()).value() > 0.0);
        assert_eq!(bill.roamed_percent(), 0.0, "static scenario never roams");
    }
    // The world stays available for anything the summaries omit.
    assert_eq!(report.world().device_ids().len(), 4);
}
