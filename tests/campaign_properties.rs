//! Property tests of the campaign subsystem: hundreds of generated
//! campaigns validate by construction and round-trip exactly, short-horizon
//! campaigns run end-to-end without panicking and meet every conservative
//! detection expectation, shrinking always lands on a strictly smaller
//! still-failing reproducer, and campaign results are independent of run
//! repetition and `Suite` thread counts.

use rtem::prelude::*;
use rtem_campaign::{
    run_campaign, shrink, CampaignControl, CampaignFault, CampaignGenerator, CampaignSpec,
    CommandTargetSpec, MeterMix, TariffPreset, WorkloadPreset,
};

#[test]
fn generated_campaigns_always_validate_and_round_trip() {
    let mut checked = 0;
    for seed in 0..10 {
        let mut generator = CampaignGenerator::new(seed);
        for _ in 0..22 {
            let campaign = generator.next_campaign();
            assert_eq!(
                campaign.validate(),
                Ok(()),
                "campaign from generator seed {seed} must validate: {}",
                campaign.serialize()
            );
            let replayed = CampaignSpec::parse(&campaign.serialize())
                .expect("serialized campaign must parse back");
            assert_eq!(campaign, replayed, "round trip must be exact");
            assert_eq!(campaign.serialize(), replayed.serialize());
            checked += 1;
        }
    }
    assert!(checked >= 200, "the property must cover 200+ campaigns");
}

#[test]
fn same_seed_generation_is_byte_identical_across_runs() {
    let stream = |seed: u64| -> String {
        CampaignGenerator::new(seed)
            .take(50)
            .map(|c| c.serialize())
            .collect()
    };
    assert_eq!(stream(424242), stream(424242));
    assert_ne!(stream(424242), stream(424243), "seeds must matter");
}

#[test]
fn short_horizon_campaigns_run_clean_and_meet_expectations() {
    // End-to-end: every sampled campaign (with its auto clean twin) must
    // run without panicking, reconcile its bills, attribute every audit
    // finding, and detect every fault the conservative expectation
    // predicate marks as detectable.
    let mut generator = CampaignGenerator::new(2026).with_horizon_range(45, 60);
    for _ in 0..12 {
        let campaign = generator.next_campaign();
        let verdict = run_campaign(&campaign).expect("generated campaigns run");
        assert!(
            verdict.passed(),
            "campaign {} failed: {:?}\n{}",
            campaign.label(),
            verdict.failures,
            campaign.serialize()
        );
        assert_eq!(verdict.missed, Vec::<usize>::new());
        assert!(verdict.billing_ok);
    }
}

#[test]
fn shrinking_yields_a_strictly_smaller_still_failing_reproducer() {
    // Start from a deliberately padded campaign around the protocol's one
    // structural blind spot — a colluding byzantine quorum with no honest
    // peer network to cross-check it — and shrink on the *semantic*
    // failure: the byzantine fault stays undetected when the campaign
    // actually runs.
    let padded = CampaignSpec {
        seed: 99,
        networks: 1,
        devices_per_network: 3,
        horizon_s: 60,
        workload: WorkloadPreset::Residential,
        meters: MeterMix::Internal,
        tariff: TariffPreset::Default,
        faults: vec![
            CampaignFault::Byzantine {
                at_s: 14,
                until_s: 34,
                net: 0,
                voters: 3,
            },
            CampaignFault::SensorStuck {
                at_s: 20,
                net: 0,
                ord: 1,
                level_ma: 5,
            },
            CampaignFault::Tamper { at_s: 22, net: 0 },
        ],
        controls: vec![CampaignControl::MeasureInterval {
            at_s: 16,
            target: CommandTargetSpec::All,
            interval_ms: 250,
        }],
        mobility: Vec::new(),
    };
    assert_eq!(padded.validate(), Ok(()));

    let mut fails = |candidate: &CampaignSpec| {
        run_campaign(candidate).is_ok_and(|verdict| {
            verdict
                .family(FaultFamily::Byzantine)
                .is_some_and(|family| family.undetected > 0)
        })
    };
    let shrunk = shrink(&padded, &mut fails);
    assert!(fails(&shrunk), "the reproducer must still fail");
    assert!(
        shrunk.size() < padded.size(),
        "shrinking must make the reproducer strictly smaller"
    );
    assert_eq!(
        shrunk.faults.len(),
        1,
        "only the byzantine fault survives: {}",
        shrunk.serialize()
    );
    assert!(shrunk.controls.is_empty());
    assert_eq!(shrunk.networks, 1, "the blind spot needs the lone network");
    assert_eq!(shrunk.validate(), Ok(()));
    // And the reproducer replays from its own serialized fixture.
    let replayed = CampaignSpec::parse(&shrunk.serialize()).unwrap();
    assert!(fails(&replayed));
}

#[test]
fn campaign_digests_are_stable_across_runs_and_suite_threads() {
    let campaign = CampaignGenerator::new(5)
        .with_horizon_range(45, 55)
        .next_campaign();
    let a = run_campaign(&campaign).unwrap();
    let b = run_campaign(&campaign).unwrap();
    assert_eq!(a.digest, b.digest, "same campaign, same digest");
    assert_eq!(a, b);

    // The same campaign scenario swept by a Suite must produce identical
    // resilience regardless of worker thread count.
    let sweep = |threads: usize| {
        Suite::new(campaign.to_scenario())
            .over_seeds([campaign.seed, campaign.seed + 1])
            .with_threads(threads)
            .run()
            .expect("campaign scenario sweeps cleanly")
    };
    let one = sweep(1);
    let three = sweep(3);
    assert_eq!(one.cells.len(), three.cells.len());
    for (a, b) in one.cells.iter().zip(three.cells.iter()) {
        assert_eq!(a.key.to_string(), b.key.to_string());
        assert_eq!(
            format!("{:?}", a.report.resilience),
            format!("{:?}", b.report.resilience),
            "thread count must not leak into results"
        );
        assert_eq!(
            format!("{:?}", a.report.bills),
            format!("{:?}", b.report.bills)
        );
    }
}
