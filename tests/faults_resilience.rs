//! Integration tests of the fault-injection & resilience subsystem, against
//! the facade only: a `FaultPlan` on a `ScenarioSpec` must inject, be
//! detected by the right signal, and produce a deterministic
//! `ResilienceReport`.

use rtem::prelude::*;

fn faulted_spec(seed: u64) -> ScenarioSpec {
    let home = ScenarioSpec::network_addr(0);
    let victim = ScenarioSpec::device_id(0, 0);
    let plan = FaultPlan::new()
        .sensor_stuck_at(SimTime::from_secs(20), victim, 5.0)
        .tamper_at(SimTime::from_secs(25), home);
    ScenarioSpec::paper_testbed(seed)
        .with_horizon(SimDuration::from_secs(50))
        .with_fault_plan(plan)
}

#[test]
fn same_plan_and_seed_is_byte_identical() {
    let a = Experiment::new(faulted_spec(11)).run().unwrap();
    let b = Experiment::new(faulted_spec(11)).run().unwrap();
    let ra = a.resilience.as_ref().expect("faulted run has resilience");
    let rb = b.resilience.as_ref().unwrap();
    assert_eq!(ra, rb, "resilience must be deterministic");
    assert_eq!(format!("{ra:?}"), format!("{rb:?}"), "byte-identical");
    // And a different seed produces a different world (sanity).
    let c = Experiment::new(faulted_spec(12)).run().unwrap();
    assert_eq!(c.resilience.as_ref().unwrap().faults.len(), ra.faults.len());
}

#[test]
fn tamper_is_detected_by_the_chain_audit_and_attributed() {
    let home = ScenarioSpec::network_addr(0);
    let spec = ScenarioSpec::paper_testbed(7)
        .with_horizon(SimDuration::from_secs(45))
        .with_fault_plan(FaultPlan::new().tamper_at(SimTime::from_secs(22), home));
    let report = Experiment::new(spec).run().unwrap();
    let resilience = report.resilience.as_ref().unwrap();
    assert_eq!(resilience.detection_rate(), Some(1.0));
    let tamper = resilience.family(FaultFamily::Tamper).unwrap();
    assert_eq!(tamper.injected, 1);
    assert_eq!(tamper.detected, 1);
    assert!(tamper.mean_detection_latency_s.unwrap() <= 10.0);
    // The forgery ends up in the final ledger audit, attributed to the
    // injection — nothing unexplained.
    assert!(!report.all_ledgers_clean());
    assert!(resilience.audit_findings >= 1);
    assert_eq!(
        resilience.audit_findings_attributed,
        resilience.audit_findings
    );
    assert_eq!(resilience.audit_findings_unattributed(), 0);
    // The forged block also breaks the account cache consistency check.
    let ledger = report.ledger(home).unwrap();
    assert!(!ledger.audit_clean);
    assert!(ledger.first_bad_block.is_some());
    // The detection signal names the forged block.
    let record = &resilience.faults[0];
    assert!(matches!(
        record.signal,
        Some(DetectionSignal::ChainAudit { block_index }) if Some(block_index) == record.tampered_block
    ));
}

#[test]
fn clean_run_has_no_resilience_report() {
    let spec = ScenarioSpec::paper_testbed(3).with_horizon(SimDuration::from_secs(20));
    let report = Experiment::new(spec).run().unwrap();
    assert!(report.resilience.is_none());
}

#[test]
fn stuck_sensor_moves_accuracy_and_is_detected() {
    let victim = ScenarioSpec::device_id(0, 0);
    let spec = ScenarioSpec::paper_testbed(21)
        .with_horizon(SimDuration::from_secs(60))
        .with_fault_plan(FaultPlan::new().sensor_stuck_at(SimTime::from_secs(20), victim, 5.0));
    let report = Experiment::new(spec).run().unwrap();
    let resilience = report.resilience.as_ref().unwrap();
    let sensor = resilience.family(FaultFamily::Sensor).unwrap();
    assert_eq!(sensor.detected, 1);
    assert_eq!(
        resilience.faults[0].signal,
        Some(DetectionSignal::AnomalousWindow)
    );
    // Under-reporting widens the aggregator-over-devices gap vs. the twin.
    let delta = resilience.accuracy_delta_percent().unwrap();
    assert!(delta > 5.0, "accuracy delta {delta:.2} should be large");
    // The chain itself stays honest — this is a sensor fault, not tampering.
    assert!(report.all_ledgers_clean());
}

#[test]
fn outage_with_failover_keeps_devices_reporting() {
    let home = ScenarioSpec::network_addr(0);
    let backup = ScenarioSpec::network_addr(1);
    let spec = ScenarioSpec::paper_testbed(31)
        .with_horizon(SimDuration::from_secs(90))
        .with_fault_plan(FaultPlan::new().outage_between(
            SimTime::from_secs(30),
            SimTime::from_secs(60),
            home,
            Some(backup),
        ));
    let report = Experiment::new(spec).run().unwrap();
    let resilience = report.resilience.as_ref().unwrap();
    let outage = resilience.family(FaultFamily::Outage).unwrap();
    assert_eq!(outage.injected, 1);
    assert_eq!(outage.detected, 1);
    // The backup collected roamed consumption for the home network's
    // devices while it was dark.
    let backup_agg = report.world().aggregator(backup).unwrap();
    assert!(backup_agg
        .registry()
        .is_member(ScenarioSpec::device_id(0, 0)));
    // Devices are home again after recovery.
    assert_eq!(
        report.world().device_network(ScenarioSpec::device_id(0, 0)),
        Some(home)
    );
}

#[test]
fn byzantine_minority_and_colluding_quorum_are_both_detected() {
    let network = ScenarioSpec::network_addr(0);
    let run = |voters: u32| {
        let spec = ScenarioSpec::paper_testbed(41)
            .with_horizon(SimDuration::from_secs(60))
            .with_fault_plan(FaultPlan::new().byzantine_between(
                SimTime::from_secs(20),
                SimTime::from_secs(50),
                network,
                voters,
            ));
        Experiment::new(spec).run().unwrap()
    };
    let minority = run(1);
    let resilience = minority.resilience.as_ref().unwrap();
    assert_eq!(resilience.detection_rate(), Some(1.0));
    assert!(matches!(
        resilience.faults[0].signal,
        Some(DetectionSignal::ConsensusRejected { .. })
    ));
    // A colluding quorum commits its forgery inside its own network, but
    // the second testbed network's aggregator cross-checks the committed
    // records at window seal and refuses to vouch for them.
    let majority = run(2);
    let resilience = majority.resilience.as_ref().unwrap();
    assert_eq!(resilience.detection_rate(), Some(1.0));
    let byz = resilience.family(FaultFamily::Byzantine).unwrap();
    assert_eq!(byz.detected, 1);
    assert_eq!(byz.undetected, 0);
    assert!(matches!(
        resilience.faults[0].signal,
        Some(DetectionSignal::LedgerCrossCheck { peers: 1 })
    ));
}

#[test]
fn loss_burst_is_detected_by_link_telemetry() {
    // A 70 % loss burst on one network's Wi-Fi: QoS-1 retries absorb the
    // drops, so no verification window turns anomalous — the per-link
    // delivery-gap watch at window seal is what must catch it.
    let network = ScenarioSpec::network_addr(0);
    let spec = ScenarioSpec::paper_testbed(71)
        .with_horizon(SimDuration::from_secs(60))
        .with_fault_plan(FaultPlan::new().link_burst(
            SimTime::from_secs(20),
            SimTime::from_secs(40),
            LinkTarget::Wifi {
                network: Some(network),
            },
            rtem::net::link::LinkConfig {
                loss_probability: 0.7,
                ..rtem::net::link::LinkConfig::wifi()
            },
        ));
    let report = Experiment::new(spec).run().unwrap();
    let resilience = report.resilience.as_ref().unwrap();
    let link = resilience.family(FaultFamily::Link).unwrap();
    assert_eq!(link.injected, 1);
    assert_eq!(link.detected, 1, "loss bursts must no longer score 0%");
    assert_eq!(link.undetected, 0);
    let record = &resilience.faults[0];
    match record.signal {
        Some(DetectionSignal::LinkDegraded { lost, offered }) => {
            assert!(offered >= 20, "enough traffic to judge: {offered}");
            assert!(
                lost as f64 > 0.3 * offered as f64,
                "observed loss {lost}/{offered} reflects the burst"
            );
        }
        other => panic!("expected LinkDegraded, got {other:?}"),
    }
    // Detection happens while the burst is live or within the grace, not
    // at the horizon.
    assert!(record.detection_latency().unwrap() <= SimDuration::from_secs(30));
}

#[test]
fn streaming_and_batch_agree_and_probes_see_faults() {
    let spec = faulted_spec(51);
    let batch = Experiment::new(spec.clone()).run().unwrap();
    let handle = Experiment::new(spec)
        .start_probed(RecordingProbe::default())
        .unwrap();
    let (streamed, probe) = handle.finish_probed();
    assert_eq!(batch.resilience, streamed.resilience);
    assert_eq!(probe.faults_injected(), 2);
    assert!(probe.faults_detected() >= 1);
    // Typed fault events appear in the recorded stream with their ids.
    assert!(probe
        .events()
        .iter()
        .any(|e| matches!(e, RunEvent::FaultInjected { id: 0, .. })));
}

#[test]
fn suite_sweeps_fault_plans_in_parallel() {
    let home = ScenarioSpec::network_addr(0);
    let base = ScenarioSpec::paper_testbed(61).with_horizon(SimDuration::from_secs(40));
    let report = Suite::new(base)
        .over_fault_plans([
            ("clean", FaultPlan::new()),
            (
                "tamper",
                FaultPlan::new().tamper_at(SimTime::from_secs(22), home),
            ),
        ])
        .with_threads(2)
        .run()
        .unwrap();
    assert_eq!(report.cells.len(), 2);
    assert!(report.cells[0].report.resilience.is_none());
    let faulted = report.cells[1].report.resilience.as_ref().unwrap();
    assert_eq!(faulted.detection_rate(), Some(1.0));
    let rate = report.aggregates.fault_detection_rate.unwrap();
    assert_eq!(rate.count, 1, "only the faulted cell contributes");
    assert_eq!(rate.mean, 1.0);
    assert_eq!(
        report.cells[1].key.to_string(),
        "seed=61 devices=2 faults=tamper"
    );
}
