//! Golden-snapshot determinism for the workload & tariff subsystem: a full
//! simulated day of the neighborhood mix (residential + EV fleet + solar)
//! must replay bit-identically, per-day stochastic structure included. The
//! [`RunReport`] is reduced to a canonical text rendering and compared — as
//! a SHA-256 digest — against the committed fixture, exactly like the PR 4
//! scale goldens it sits alongside.
//!
//! Regenerate deliberately (after an *intentional* behavior change) with:
//!
//! ```bash
//! RTEM_UPDATE_GOLDEN=1 cargo test --test workload_determinism
//! ```
//!
//! On mismatch, set `RTEM_DUMP_GOLDEN=1` to write the full rendering next
//! to the fixture for diffing.

use rtem::chain::sha256::Sha256;
use rtem::prelude::*;
use std::path::PathBuf;

// Relative to this test's owning crate (`crates/rtem`), which declares the
// workspace-level tests via explicit `[[test]]` paths.
const FIXTURE: &str = "../../tests/fixtures/workload_golden.txt";

/// Canonical text rendering of everything a [`RunReport`] exposes. `Debug`
/// floats print shortest-roundtrip, so two renderings are equal iff every
/// metric is bit-identical.
fn render(report: &RunReport) -> String {
    format!(
        "metrics: {:#?}\naccuracy: {:#?}\nhandshakes: {:#?}\nledgers: {:#?}\nbills: {:#?}\n",
        report.metrics, report.accuracy, report.handshakes, report.ledgers, report.bills,
    )
}

fn digest(report: &RunReport) -> String {
    Sha256::digest(render(report).as_bytes()).to_hex()
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

/// 24 simulated hours of the residential + EV + solar mix under the
/// evening-peak time-of-use tariff: every workload generator's per-day
/// stochastic structure (appliance events, charge-session arrivals and
/// queueing, cloud cover) feeds the digest.
fn neighborhood_day_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::paper_testbed(1202)
        .with_devices_per_network(3)
        .with_workload(WorkloadModel::Mix(vec![
            WorkloadModel::residential(),
            WorkloadModel::ev_fleet(),
            WorkloadModel::solar_home(),
        ]))
        .with_tariff(Tariff::evening_peak(1.0))
        .with_horizon(SimDuration::from_secs(24 * 3600))
        .with_verification_window(SimDuration::from_secs(3600));
    spec.t_measure = SimDuration::from_secs(1);
    spec.upstream_sample_interval = SimDuration::from_secs(1);
    spec
}

/// A shorter cell under the demand-charge tariff, pinning the sliding-window
/// peak accounting (the only tariff with cross-record billing state).
fn demand_charge_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::paper_testbed(77)
        .with_devices_per_network(3)
        .with_workload(WorkloadModel::neighborhood())
        .with_tariff(Tariff::DemandCharge {
            price_per_mwh: 1.0,
            demand_price_per_ma: 0.05,
            window: SimDuration::from_secs(900),
        })
        .with_horizon(SimDuration::from_secs(6 * 3600))
        .with_verification_window(SimDuration::from_secs(1800));
    spec.t_measure = SimDuration::from_secs(1);
    spec.upstream_sample_interval = SimDuration::from_secs(1);
    spec
}

fn golden_cases() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        ("neighborhood_24h", neighborhood_day_spec()),
        ("demand_charge_6h", demand_charge_spec()),
    ]
}

#[test]
fn workload_reports_match_committed_fixtures() {
    let mut lines = Vec::new();
    let mut renderings = Vec::new();
    for (name, spec) in golden_cases() {
        let report = Experiment::new(spec).run().expect("golden specs are valid");
        assert!(
            report.all_ledgers_clean(),
            "{name}: golden run must audit clean"
        );
        lines.push(format!("{name} {}", digest(&report)));
        renderings.push((name, render(&report)));
    }
    let produced = lines.join("\n") + "\n";

    let path = fixture_path();
    if std::env::var("RTEM_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &produced).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .expect("tests/fixtures/workload_golden.txt committed (RTEM_UPDATE_GOLDEN=1 to create)");
    if produced != committed {
        if std::env::var("RTEM_DUMP_GOLDEN").is_ok() {
            for (name, rendering) in &renderings {
                let dump = path.with_file_name(format!("workload_golden_{name}.dump"));
                std::fs::write(&dump, rendering).unwrap();
                eprintln!("dumped {}", dump.display());
            }
        }
        panic!(
            "workload RunReport diverged from the committed golden snapshot.\n\
             produced:\n{produced}\ncommitted:\n{committed}\n\
             If the change is intentional, regenerate with RTEM_UPDATE_GOLDEN=1; \
             set RTEM_DUMP_GOLDEN=1 to write full renderings for diffing."
        );
    }
}

#[test]
fn workload_suite_cell_matches_direct_run() {
    // The same neighborhood day through a Suite's workload/tariff axes must
    // produce the byte-identical report: axis plumbing must not perturb the
    // spec it hands each cell.
    let mut base = ScenarioSpec::paper_testbed(1202)
        .with_devices_per_network(3)
        .with_horizon(SimDuration::from_secs(2 * 3600))
        .with_verification_window(SimDuration::from_secs(3600));
    base.t_measure = SimDuration::from_secs(1);
    base.upstream_sample_interval = SimDuration::from_secs(1);

    let mix = WorkloadModel::Mix(vec![
        WorkloadModel::residential(),
        WorkloadModel::ev_fleet(),
        WorkloadModel::solar_home(),
    ]);
    let suite_report = Suite::new(base.clone())
        .over_workloads([(mix.label(), mix.clone())])
        .over_tariffs([("tou", Tariff::evening_peak(1.0))])
        .run()
        .expect("valid suite");
    assert_eq!(suite_report.cells.len(), 1);

    let direct = Experiment::new(
        base.with_workload(mix)
            .with_tariff(Tariff::evening_peak(1.0)),
    )
    .run()
    .expect("valid spec");
    assert_eq!(
        digest(&suite_report.cells[0].report),
        digest(&direct),
        "suite axes must hand the cell exactly the declared spec"
    );
}
