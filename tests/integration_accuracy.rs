//! Integration test: decentralized-vs-centralized measurement accuracy
//! (the Fig. 5 experiment) — the aggregator's system-level measurement must
//! exceed the sum of device-reported values by a small, loss-driven margin.

use rtem::prelude::*;
use rtem::sensors::ina219::Ina219Config;

#[test]
fn aggregator_measurement_exceeds_device_sum_by_a_few_percent() {
    let spec = ScenarioSpec::paper_testbed(301).with_horizon(SimDuration::from_secs(100));
    let report = Experiment::new(spec).run().unwrap();

    let accuracy = report
        .network_accuracy(ScenarioSpec::network_addr(0))
        .expect("network 1 has accuracy windows");
    // Settled windows skip the handshake transient: devices are not yet
    // reporting while the aggregator already measures.
    let settled: Vec<_> = accuracy.settled_windows().collect();
    assert!(settled.len() >= 5, "enough settled windows");
    for window in &settled {
        let overhead = window.overhead_percent();
        assert!(
            (0.0..12.0).contains(&overhead),
            "window {} overhead {overhead}% (reported {} mA·s, measured {} mA·s)",
            window.index,
            window.devices_total_mas,
            window.aggregator_mas
        );
    }
    let mean_overhead = accuracy.mean_overhead_percent().unwrap();
    assert!(
        (0.9..8.2).contains(&mean_overhead),
        "mean overhead {mean_overhead}% should fall in the paper's 0.9–8.2% band"
    );
}

#[test]
fn per_device_contributions_sum_to_the_network_total() {
    let spec = ScenarioSpec::paper_testbed(302).with_horizon(SimDuration::from_secs(60));
    let report = Experiment::new(spec).run().unwrap();
    let accuracy = report
        .network_accuracy(ScenarioSpec::network_addr(1))
        .expect("network 2 has accuracy windows");
    for window in accuracy
        .windows
        .iter()
        .filter(|w| w.devices_total_mas > 0.0)
    {
        let per_device_sum: f64 = window.per_device_mas.values().sum();
        assert!((per_device_sum - window.devices_total_mas).abs() < 1e-9);
        assert_eq!(window.per_device_mas.len(), 2, "two devices contribute");
    }
}

#[test]
fn device_sensor_errors_shift_the_gap() {
    // Ablation: the INA219's positive offset and gain error make devices
    // *over-report* slightly, which partially hides the ohmic losses. With
    // ideal device sensors that compensation disappears, so the
    // aggregator-vs-devices gap grows (and is then explained by grid losses
    // plus the aggregator's own sensor alone).
    let run = |sensor: Ina219Config, seed: u64| -> f64 {
        let spec = ScenarioSpec::paper_testbed(seed)
            .with_horizon(SimDuration::from_secs(80))
            .with_sensor(sensor);
        let report = Experiment::new(spec).run().unwrap();
        report
            .network_accuracy(ScenarioSpec::network_addr(0))
            .and_then(|a| a.mean_overhead_percent())
            .expect("settled windows exist")
    };
    let with_error = run(Ina219Config::testbed(), 303);
    let ideal = run(Ina219Config::ideal(), 303);
    assert!(
        ideal > with_error,
        "removing the devices' positive sensor bias must widen the gap \
         (ideal {ideal}% vs testbed {with_error}%)"
    );
    for overhead in [with_error, ideal] {
        assert!((0.0..12.0).contains(&overhead), "overhead {overhead}%");
    }
}

#[test]
fn no_verification_anomalies_with_honest_devices() {
    let spec = ScenarioSpec::paper_testbed(304).with_horizon(SimDuration::from_secs(80));
    let report = Experiment::new(spec).run().unwrap();
    for network in &report.metrics.networks {
        // The very first window may legitimately look anomalous: the devices
        // spend ~6 s of it in the registration handshake, so part of their
        // consumption only arrives (backfilled) in the next window.
        assert!(
            network.anomalous_windows <= 1,
            "honest devices must not trip the verifier on {} beyond the \
             registration transient ({} anomalous windows)",
            network.network,
            network.anomalous_windows
        );
    }
}
