//! Golden-snapshot determinism at scale: the event-scheduler redesign (and
//! any future hot-path work) must not perturb a run's observable output by
//! even one bit. Each golden scenario's [`RunReport`] is reduced to a
//! canonical text rendering and compared — as a SHA-256 digest — against
//! the committed fixture captured on the pre-redesign loop.
//!
//! Regenerate deliberately (after an *intentional* behavior change) with:
//!
//! ```bash
//! RTEM_UPDATE_GOLDEN=1 cargo test --test scale_determinism
//! ```
//!
//! On mismatch, set `RTEM_DUMP_GOLDEN=1` to write the full rendering next
//! to the fixture for diffing.

use rtem::chain::sha256::Sha256;
use rtem::net::link::LinkConfig;
use rtem::prelude::*;
use std::path::PathBuf;

// Relative to this test's owning crate (`crates/rtem`), which declares the
// workspace-level tests via explicit `[[test]]` paths.
const FIXTURE: &str = "../../tests/fixtures/scale_golden.txt";

/// Canonical text rendering of everything a [`RunReport`] exposes. `Debug`
/// floats print shortest-roundtrip, so two renderings are equal iff every
/// metric is bit-identical.
fn render(report: &RunReport) -> String {
    format!(
        "metrics: {:#?}\naccuracy: {:#?}\nhandshakes: {:#?}\nledgers: {:#?}\nbills: {:#?}\nresilience: {:#?}\nfault_records: {:#?}\n",
        report.metrics,
        report.accuracy,
        report.handshakes,
        report.ledgers,
        report.bills,
        report.resilience,
        report.world().fault_records(),
    )
}

fn digest(report: &RunReport) -> String {
    Sha256::digest(render(report).as_bytes()).to_hex()
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

/// The 200-device fleet cell the scheduler redesign is benchmarked on.
fn fleet_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::single_network(200, seed).with_horizon(SimDuration::from_secs(60))
}

/// A smaller scenario exercising every subsystem the report can surface:
/// multi-network topology, scripted mobility into an initially-empty
/// network, and a fault plan (sensor + tamper + scoped link burst).
fn kitchen_sink_spec() -> ScenarioSpec {
    let mobile = ScenarioSpec::device_id(0, 0);
    let dest = ScenarioSpec::network_addr(3);
    let plan = FaultPlan::new()
        .sensor_stuck_at(SimTime::from_secs(20), ScenarioSpec::device_id(1, 2), 5.0)
        .tamper_at(SimTime::from_secs(25), ScenarioSpec::network_addr(1))
        .link_burst(
            SimTime::from_secs(30),
            SimTime::from_secs(40),
            LinkTarget::Wifi {
                network: Some(ScenarioSpec::network_addr(2)),
            },
            LinkConfig {
                loss_probability: 0.6,
                ..LinkConfig::wifi()
            },
        );
    ScenarioSpec::paper_testbed(777)
        .with_networks(3)
        .with_devices_per_network(8)
        .with_empty_networks(1)
        .with_horizon(SimDuration::from_secs(60))
        .unplug_at(SimTime::from_secs(22), mobile)
        .plug_in_at(SimTime::from_secs(32), mobile, dest)
        .with_fault_plan(plan)
}

fn golden_cases() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        ("fleet_200x60s", fleet_spec(4242)),
        ("kitchen_sink_3x8", kitchen_sink_spec()),
    ]
}

#[test]
fn golden_reports_match_committed_fixtures() {
    let mut lines = Vec::new();
    let mut renderings = Vec::new();
    for (name, spec) in golden_cases() {
        let report = Experiment::new(spec).run().expect("golden specs are valid");
        lines.push(format!("{name} {}", digest(&report)));
        renderings.push((name, render(&report)));
    }
    let produced = lines.join("\n") + "\n";

    let path = fixture_path();
    if std::env::var("RTEM_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &produced).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .expect("tests/fixtures/scale_golden.txt committed (RTEM_UPDATE_GOLDEN=1 to create)");
    if produced != committed {
        if std::env::var("RTEM_DUMP_GOLDEN").is_ok() {
            for (name, rendering) in &renderings {
                let dump = path.with_file_name(format!("scale_golden_{name}.dump"));
                std::fs::write(&dump, rendering).unwrap();
                eprintln!("dumped {}", dump.display());
            }
        }
        panic!(
            "RunReport diverged from the committed golden snapshot.\n\
             produced:\n{produced}\ncommitted:\n{committed}\n\
             If the change is intentional, regenerate with RTEM_UPDATE_GOLDEN=1; \
             set RTEM_DUMP_GOLDEN=1 to write full renderings for diffing."
        );
    }
}

#[test]
fn fleet_report_is_thread_count_invariant() {
    // The same 200-device cell, run through a Suite on 1 vs 4 worker
    // threads alongside a mixed-protocol meter-kind cell: per-cell digests
    // must be identical, and the internal-fleet cell must also match a
    // direct Experiment run.
    let base = fleet_spec(4242).with_horizon(SimDuration::from_secs(45));
    let suite = |threads| {
        Suite::new(base.clone())
            .over_seeds([4242])
            .over_meter_kinds([
                ("internal", Vec::new()),
                ("mixed", MeterKind::REAL.to_vec()),
            ])
            .with_threads(threads)
            .run()
            .expect("suite specs are valid")
    };
    let single = suite(1);
    let pooled = suite(4);
    assert_eq!(single.cells.len(), 2);
    assert_eq!(pooled.cells.len(), 2);
    for (a, b) in single.cells.iter().zip(&pooled.cells) {
        assert_eq!(a.key, b.key, "grid order is thread-count invariant");
        assert_eq!(
            digest(&a.report),
            digest(&b.report),
            "cell {} diverged across thread counts",
            a.key
        );
    }
    let direct = Experiment::new(base.with_seed(4242))
        .run()
        .expect("valid spec");
    assert_eq!(
        digest(&single.cells[0].report),
        digest(&direct),
        "suite execution must not perturb the run"
    );
}
