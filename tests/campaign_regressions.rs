//! Replays the committed campaign reproducers in
//! `tests/fixtures/campaigns/` — minimal shrunk campaigns the generator
//! found for the two historic detection blind spots (Wi-Fi loss bursts
//! absorbed by QoS-1 retries, colluding byzantine quorums committing
//! forgeries) — and asserts each now lands detected with the right signal.
//! Any regression back to undetected fails here first.
//!
//! Regenerate the corpus from the generator + shrinker with
//! `RTEM_UPDATE_CAMPAIGN_FIXTURES=1 cargo test -p rtem-campaign --test
//! campaign_regressions` — the scan and shrink are fully deterministic, so
//! the files only change when generation or detection semantics change.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Once;

use rtem::prelude::*;
use rtem_campaign::{
    expected_detected, run_campaign, shrink, CampaignFault, CampaignGenerator, CampaignSpec,
};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/campaigns")
}

/// Whether the campaign still *reproduces*: it carries at least one
/// expected-detectable fault matching `wanted`, and running it confirms
/// every such fault detected.
fn reproduces(spec: &CampaignSpec, wanted: &dyn Fn(&CampaignSpec, &CampaignFault) -> bool) -> bool {
    let wanted_indices: Vec<usize> = expected_detected(spec)
        .into_iter()
        .filter(|&i| wanted(spec, &spec.faults[i]))
        .collect();
    !wanted_indices.is_empty()
        && run_campaign(spec)
            .is_ok_and(|verdict| wanted_indices.iter().all(|i| !verdict.missed.contains(i)))
}

/// Scans generator seeds for the first campaign that reproduces, then
/// shrinks it while it keeps reproducing — the committed minimal fixture.
fn find_and_shrink(wanted: &dyn Fn(&CampaignSpec, &CampaignFault) -> bool) -> CampaignSpec {
    for seed in 0..500u64 {
        let mut generator = CampaignGenerator::new(seed).with_horizon_range(45, 70);
        for _ in 0..4 {
            let campaign = generator.next_campaign();
            if !reproduces(&campaign, wanted) {
                continue;
            }
            let mut fails = |candidate: &CampaignSpec| reproduces(candidate, wanted);
            return shrink(&campaign, &mut fails);
        }
    }
    panic!("no generator campaign matched the reproducer criteria");
}

fn maybe_regenerate() {
    static REGEN: Once = Once::new();
    REGEN.call_once(|| {
        if std::env::var_os("RTEM_UPDATE_CAMPAIGN_FIXTURES").is_none() {
            return;
        }
        let dir = fixtures_dir();
        fs::create_dir_all(&dir).expect("create fixtures dir");

        let loss_burst = find_and_shrink(&|_, fault| {
            matches!(
                fault,
                CampaignFault::WifiBurst {
                    loss_permille: 400..,
                    ..
                }
            )
        });
        fs::write(dir.join("loss_burst.txt"), loss_burst.serialize()).unwrap();

        let quorum = find_and_shrink(&|spec, fault| match *fault {
            CampaignFault::Byzantine { voters, .. } => {
                spec.networks >= 2 && voters > spec.devices_per_network / 2
            }
            _ => false,
        });
        fs::write(dir.join("quorum_collusion.txt"), quorum.serialize()).unwrap();
    });
}

fn committed_fixtures() -> Vec<(String, CampaignSpec)> {
    maybe_regenerate();
    let dir = fixtures_dir();
    let mut fixtures = Vec::new();
    let entries = fs::read_dir(&dir).unwrap_or_else(|e| {
        panic!(
            "missing campaign fixture corpus at {} ({e}); regenerate with \
             RTEM_UPDATE_CAMPAIGN_FIXTURES=1",
            dir.display()
        )
    });
    for entry in entries {
        let path = entry.unwrap().path();
        if path.extension().map_or(true, |ext| ext != "txt") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(&path).unwrap();
        let spec = CampaignSpec::parse(&text)
            .unwrap_or_else(|e| panic!("fixture {name} does not parse: {e}"));
        assert_eq!(
            text,
            spec.serialize(),
            "fixture {name} must be in canonical serialized form"
        );
        fixtures.push((name, spec));
    }
    fixtures.sort_by(|a, b| a.0.cmp(&b.0));
    fixtures
}

#[test]
fn committed_reproducers_replay_green() {
    let fixtures = committed_fixtures();
    assert!(
        fixtures.len() >= 2,
        "the corpus must hold at least the loss-burst and quorum reproducers"
    );
    for (name, spec) in &fixtures {
        assert_eq!(spec.validate(), Ok(()), "fixture {name} must validate");
        let verdict = run_campaign(spec).unwrap();
        assert!(
            verdict.passed(),
            "reproducer {name} regressed: {:?}",
            verdict.failures
        );
        // Replays are deterministic: the digest pins the whole report.
        let again = run_campaign(spec).unwrap();
        assert_eq!(
            verdict.digest, again.digest,
            "fixture {name} digest drifted"
        );
    }
}

#[test]
fn loss_burst_reproducer_is_caught_by_link_telemetry() {
    let (_, spec) = committed_fixtures()
        .into_iter()
        .find(|(name, _)| name == "loss_burst")
        .expect("loss_burst fixture is committed");
    let report = Experiment::new(spec.to_scenario()).run().unwrap();
    let resilience = report.resilience.as_ref().unwrap();
    let link = resilience.family(FaultFamily::Link).unwrap();
    assert!(link.detected >= 1, "the loss burst must stay detected");
    assert_eq!(link.undetected, 0);
    assert!(
        resilience.faults.iter().any(|record| matches!(
            record.signal,
            Some(DetectionSignal::LinkDegraded { lost, offered })
                if offered >= 20 && lost >= 8
        )),
        "detection must come from the per-link delivery-gap watch"
    );
}

#[test]
fn quorum_collusion_reproducer_is_caught_by_peer_cross_check() {
    let (_, spec) = committed_fixtures()
        .into_iter()
        .find(|(name, _)| name == "quorum_collusion")
        .expect("quorum_collusion fixture is committed");
    assert!(
        spec.networks >= 2,
        "the reproducer needs an honest peer network"
    );
    let report = Experiment::new(spec.to_scenario()).run().unwrap();
    let resilience = report.resilience.as_ref().unwrap();
    let byz = resilience.family(FaultFamily::Byzantine).unwrap();
    assert_eq!(byz.undetected, 0, "the quorum forgery must stay detected");
    assert!(
        resilience.faults.iter().any(|record| matches!(
            record.signal,
            Some(DetectionSignal::LedgerCrossCheck { peers }) if peers >= 1
        )),
        "detection must come from the peer ledger cross-check"
    );
}
