//! Integration test: device mobility (Fig. 3 sequence 2/3, Fig. 6) — the
//! core claim of the paper: consumption stays monitorable and billable to
//! the home network while the device operates at a foreign grid-location.

use rtem::prelude::*;

fn quick(seed: u64) -> MobilityConfig {
    let mut config = MobilityConfig::testbed(seed);
    config.unplug_at = SimTime::from_secs(30);
    config.transit = SimDuration::from_secs(15);
    config.settle = SimDuration::from_secs(45);
    config
}

#[test]
fn roaming_device_gets_temporary_membership_and_home_billing() {
    let config = quick(201);
    let outcome = run_mobility(&config);

    let handshake = outcome.handshake.expect("temporary membership established");
    assert_eq!(handshake.membership, MembershipKind::Temporary);
    assert!(
        (5.0..7.0).contains(&outcome.thandshake_secs().unwrap()),
        "Thandshake {} s",
        outcome.thandshake_secs().unwrap()
    );
    assert!(outcome.roaming_charge_uas > 0);
    assert!(outcome.total_charge_uas >= outcome.roaming_charge_uas);
}

#[test]
fn locally_buffered_data_is_backfilled_after_the_handshake() {
    let outcome = run_mobility(&quick(202));
    assert!(
        outcome.backfilled_records > 0,
        "records measured during the handshake must arrive as backfill"
    );
    // The destination aggregator saw the device too.
    let dest = outcome.destination_view.expect("destination trace");
    assert!(!dest.points.is_empty());
}

#[test]
fn home_aggregator_sees_no_consumption_during_transit() {
    let config = quick(203);
    let outcome = run_mobility(&config);
    let view = outcome.home_view.expect("home trace");
    let transit_reports = view
        .points
        .iter()
        .filter(|(t, _)| {
            *t > config.unplug_at.as_secs_f64() + 1.0 && *t < outcome.reconnected_at.as_secs_f64()
        })
        .count();
    assert_eq!(transit_reports, 0, "transit (idle) is never billed");
}

#[test]
fn stationary_devices_are_unaffected_by_a_peers_move() {
    let mobile = ScenarioSpec::device_id(0, 0);
    let stationary = ScenarioSpec::device_id(0, 1);
    let spec = ScenarioSpec::paper_testbed(204)
        .with_horizon(SimDuration::from_secs(90))
        .unplug_at(SimTime::from_secs(30), mobile)
        .plug_in_at(
            SimTime::from_secs(45),
            mobile,
            ScenarioSpec::network_addr(1),
        );
    let report = Experiment::new(spec).run().unwrap();

    let home = report
        .world()
        .aggregator(ScenarioSpec::network_addr(0))
        .unwrap();
    // The stationary device keeps reporting throughout.
    let stationary_entries = home.ledger().account(stationary.0).unwrap().entries;
    assert!(stationary_entries > 400, "entries {stationary_entries}");
    assert!(report.world().device(stationary).unwrap().is_registered());
    // The home aggregator retains the mobile device's master membership.
    assert_eq!(
        home.registry().membership(mobile).unwrap().kind,
        MembershipKind::Master
    );
}

#[test]
fn returning_home_reuses_the_master_membership() {
    let mobile = ScenarioSpec::device_id(0, 0);
    let home_addr = ScenarioSpec::network_addr(0);
    let away_addr = ScenarioSpec::network_addr(1);
    let spec = ScenarioSpec::paper_testbed(205)
        .with_horizon(SimDuration::from_secs(120))
        .unplug_at(SimTime::from_secs(30), mobile)
        .plug_in_at(SimTime::from_secs(40), mobile, away_addr)
        .unplug_at(SimTime::from_secs(70), mobile)
        .plug_in_at(SimTime::from_secs(80), mobile, home_addr);
    let report = Experiment::new(spec).run().unwrap();

    let device = report.world().device(mobile).unwrap();
    assert!(device.is_registered());
    let (serving, kind, _) = device.registration().unwrap();
    assert_eq!(serving, home_addr);
    assert_eq!(kind, MembershipKind::Master);
    // The temporary membership at the foreign aggregator was only ever
    // temporary; the home one persists.
    let home = report.world().aggregator(home_addr).unwrap();
    assert_eq!(
        home.registry().membership(mobile).unwrap().kind,
        MembershipKind::Master
    );
}
