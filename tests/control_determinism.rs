//! Golden-snapshot determinism for the fleet-command control plane.
//!
//! Two guarantees, locked as SHA-256 digests against committed fixtures:
//!
//! 1. A run that reconfigures the fleet mid-flight (a staged Tmeasure
//!    rollout plus a retained QoS 2 site command) is bit-for-bit
//!    reproducible — the whole [`RunReport`] *including* the
//!    [`ControlReport`] command accounting hashes to the committed value.
//! 2. A spec whose control plan is *empty* is indistinguishable from one
//!    that predates the control plane entirely: it reproduces the committed
//!    `scale_golden.txt` fixture of `tests/scale_determinism.rs` verbatim.
//!    The control subsystem must be pay-for-what-you-use — no manager
//!    session, no extra RNG draws, no event-order perturbation.
//!
//! Regenerate the control fixture deliberately (after an *intentional*
//! behavior change) with:
//!
//! ```bash
//! RTEM_UPDATE_GOLDEN=1 cargo test --test control_determinism
//! ```
//!
//! On mismatch, set `RTEM_DUMP_GOLDEN=1` to write the full rendering next
//! to the fixture for diffing.

use rtem::chain::sha256::Sha256;
use rtem::net::link::LinkConfig;
use rtem::prelude::*;
use std::path::PathBuf;

// Relative to this test's owning crate (`crates/rtem`), which declares the
// workspace-level tests via explicit `[[test]]` paths.
const FIXTURE: &str = "../../tests/fixtures/control_golden.txt";
const SCALE_FIXTURE: &str = "../../tests/fixtures/scale_golden.txt";

/// Canonical text rendering; identical to `scale_determinism::render` plus
/// the control-plane accounting, so an empty-plan report (whose `control`
/// is `None`... and is rendered by the scale fixture) stays comparable.
fn render(report: &RunReport) -> String {
    format!(
        "metrics: {:#?}\naccuracy: {:#?}\nhandshakes: {:#?}\nledgers: {:#?}\nbills: {:#?}\nresilience: {:#?}\nfault_records: {:#?}\n",
        report.metrics,
        report.accuracy,
        report.handshakes,
        report.ledgers,
        report.bills,
        report.resilience,
        report.world().fault_records(),
    )
}

fn render_with_control(report: &RunReport) -> String {
    format!(
        "{}control: {:#?}\n",
        render(report),
        report.control.as_ref().expect("spec carries a plan")
    )
}

fn fixture_path(relative: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(relative)
}

/// The golden control scenario: the paper testbed commanded mid-run — a
/// two-stage Tmeasure slowdown over QoS 1, a retained QoS 2 tariff hint to
/// one site, and a mute/resume round-trip on a single device.
fn commanded_spec() -> ScenarioSpec {
    let t = SimTime::from_secs;
    let site = ScenarioSpec::network_addr(1);
    let dev = ScenarioSpec::device_id(0, 1);
    let plan = ControlPlan::new()
        .staged_rollout(
            t(20),
            SimDuration::from_secs(5),
            &[50, 100],
            FleetCommand::SetMeasureInterval {
                interval: SimDuration::from_millis(500),
            },
            QoS::AtLeastOnce,
            false,
        )
        .command_with(
            t(28),
            CommandTarget::Site(site),
            FleetCommand::SetTariffHint(TariffHint::flat(2.5)),
            QoS::ExactlyOnce,
            true,
        )
        .stop_reporting(t(32), CommandTarget::Device(dev))
        .start_reporting(t(40), CommandTarget::Device(dev));
    ScenarioSpec::paper_testbed(4242)
        .with_horizon(SimDuration::from_secs(55))
        .with_control_plan(plan)
}

#[test]
fn commanded_run_matches_committed_fixture() {
    let report = Experiment::new(commanded_spec())
        .run()
        .expect("golden spec is valid");
    let rendering = render_with_control(&report);
    let produced = format!(
        "commanded_testbed {}\n",
        Sha256::digest(rendering.as_bytes()).to_hex()
    );

    let path = fixture_path(FIXTURE);
    if std::env::var("RTEM_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &produced).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .expect("tests/fixtures/control_golden.txt committed (RTEM_UPDATE_GOLDEN=1 to create)");
    if produced != committed {
        if std::env::var("RTEM_DUMP_GOLDEN").is_ok() {
            let dump = path.with_file_name("control_golden.dump");
            std::fs::write(&dump, &rendering).unwrap();
            eprintln!("dumped {}", dump.display());
        }
        panic!(
            "commanded RunReport diverged from the committed golden snapshot.\n\
             produced:\n{produced}\ncommitted:\n{committed}\n\
             If the change is intentional, regenerate with RTEM_UPDATE_GOLDEN=1; \
             set RTEM_DUMP_GOLDEN=1 to write the full rendering for diffing."
        );
    }
}

#[test]
fn commanded_run_is_reproducible() {
    let a = Experiment::new(commanded_spec()).run().expect("valid spec");
    let b = Experiment::new(commanded_spec()).run().expect("valid spec");
    assert_eq!(
        render_with_control(&a),
        render_with_control(&b),
        "two runs of the commanded spec must be bit-identical"
    );
    let control = a.control.as_ref().expect("plan is non-empty");
    assert!(control.fully_acked(), "every command round-trip closes");
    assert_eq!(control.rejected(), 0);
}

/// The pay-for-what-you-use gate: re-runs `tests/scale_determinism.rs`'s
/// exact golden scenarios with an explicitly-attached *empty* control plan
/// and requires the committed `scale_golden.txt` digests verbatim — proof
/// that growing the control plane changed nothing for uncommanded runs.
#[test]
fn empty_control_plan_reproduces_committed_scale_goldens() {
    let fleet = ScenarioSpec::single_network(200, 4242)
        .with_horizon(SimDuration::from_secs(60))
        .with_control_plan(ControlPlan::new());
    let mobile = ScenarioSpec::device_id(0, 0);
    let dest = ScenarioSpec::network_addr(3);
    let faults = FaultPlan::new()
        .sensor_stuck_at(SimTime::from_secs(20), ScenarioSpec::device_id(1, 2), 5.0)
        .tamper_at(SimTime::from_secs(25), ScenarioSpec::network_addr(1))
        .link_burst(
            SimTime::from_secs(30),
            SimTime::from_secs(40),
            LinkTarget::Wifi {
                network: Some(ScenarioSpec::network_addr(2)),
            },
            LinkConfig {
                loss_probability: 0.6,
                ..LinkConfig::wifi()
            },
        );
    let kitchen_sink = ScenarioSpec::paper_testbed(777)
        .with_networks(3)
        .with_devices_per_network(8)
        .with_empty_networks(1)
        .with_horizon(SimDuration::from_secs(60))
        .unplug_at(SimTime::from_secs(22), mobile)
        .plug_in_at(SimTime::from_secs(32), mobile, dest)
        .with_fault_plan(faults)
        .with_control_plan(ControlPlan::new());

    let mut lines = Vec::new();
    for (name, spec) in [("fleet_200x60s", fleet), ("kitchen_sink_3x8", kitchen_sink)] {
        let report = Experiment::new(spec).run().expect("golden specs are valid");
        assert!(
            report.control.is_none(),
            "an empty plan must not produce a ControlReport"
        );
        lines.push(format!(
            "{name} {}",
            Sha256::digest(render(&report).as_bytes()).to_hex()
        ));
    }
    let produced = lines.join("\n") + "\n";
    let committed = std::fs::read_to_string(fixture_path(SCALE_FIXTURE))
        .expect("tests/fixtures/scale_golden.txt is committed");
    assert_eq!(
        produced, committed,
        "attaching an empty control plan perturbed the pre-control goldens"
    );
}
