//! Determinism and observability of the streaming run API and the parallel
//! suite: stepping granularity must never perturb a run, the worker-thread
//! count must never perturb a sweep, and a probe on the paper testbed must
//! observe the milestones the paper's figures are built from.

use rtem::prelude::*;

fn assert_reports_identical(a: &RunReport, b: &RunReport, context: &str) {
    assert_eq!(a.metrics, b.metrics, "{context}: metrics diverged");
    assert_eq!(a.accuracy, b.accuracy, "{context}: accuracy diverged");
    assert_eq!(a.handshakes, b.handshakes, "{context}: handshakes diverged");
    assert_eq!(a.ledgers, b.ledgers, "{context}: ledgers diverged");
    assert_eq!(a.bills, b.bills, "{context}: bills diverged");
    assert_eq!(a.control, b.control, "{context}: control diverged");
}

fn mobility_spec(seed: u64) -> ScenarioSpec {
    let mobile = ScenarioSpec::device_id(0, 0);
    ScenarioSpec::paper_testbed(seed)
        .with_horizon(SimDuration::from_secs(70))
        .unplug_at(SimTime::from_secs(25), mobile)
        .plug_in_at(
            SimTime::from_secs(35),
            mobile,
            ScenarioSpec::network_addr(1),
        )
}

#[test]
fn window_stepping_matches_one_shot_run() {
    let spec = ScenarioSpec::paper_testbed(501).with_horizon(SimDuration::from_secs(40));
    let one_shot = Experiment::new(spec.clone()).run().unwrap();

    let mut handle = Experiment::new(spec).start().unwrap();
    while !handle.is_finished() {
        handle.step_window();
    }
    let stepped = handle.finish();
    assert_reports_identical(&one_shot, &stepped, "window stepping");
}

#[test]
fn arbitrary_step_granularity_matches_one_shot_run() {
    // A step size deliberately misaligned with every timer in the world
    // (Tmeasure 100 ms, windows 10 s): any granularity must reproduce the
    // batch run exactly, scripted mobility included.
    let spec = mobility_spec(502);
    let one_shot = Experiment::new(spec.clone()).run().unwrap();

    let mut handle = Experiment::new(spec).start().unwrap();
    while !handle.is_finished() {
        handle.step(SimDuration::from_millis(3_741));
    }
    let stepped = handle.finish();
    assert_reports_identical(&one_shot, &stepped, "3.741 s stepping");
}

#[test]
fn run_to_is_idempotent_and_clamped() {
    let spec = ScenarioSpec::paper_testbed(503).with_horizon(SimDuration::from_secs(20));
    let mut handle = Experiment::new(spec).start().unwrap();
    handle.run_to(SimTime::from_secs(12));
    // Going backwards is a no-op...
    assert_eq!(handle.run_to(SimTime::from_secs(5)), SimTime::from_secs(12));
    // ...and overshooting clamps to the horizon.
    assert_eq!(
        handle.run_to(SimTime::from_secs(500)),
        SimTime::from_secs(20)
    );
    assert!(handle.is_finished());
}

#[test]
fn probe_observes_paper_testbed_milestones_before_horizon() {
    // Acceptance: a probe attached to the paper testbed observes at least
    // one sealed block and one completed handshake before the horizon.
    let spec = ScenarioSpec::paper_testbed(504);
    let handle = Experiment::new(spec)
        .start_probed(RecordingProbe::default())
        .unwrap();
    let (report, probe) = handle.finish_probed();
    assert!(probe.blocks_sealed() >= 1, "a block was sealed");
    assert!(
        probe.handshakes_completed() >= 1,
        "a handshake was completed"
    );
    assert!(report.all_ledgers_clean());
}

#[test]
fn probe_events_match_the_scripted_mobility() {
    let mobile = ScenarioSpec::device_id(0, 0);
    let handle = Experiment::new(mobility_spec(505))
        .start_probed(RecordingProbe::default())
        .unwrap();
    let (_, probe) = handle.finish_probed();
    assert_eq!(probe.unplugs(), 1);
    assert_eq!(probe.plug_ins(), 5, "4 initial + 1 scripted");
    let replug = probe.events().iter().find_map(|e| match e {
        RunEvent::PluggedIn {
            at,
            device,
            network,
        } if *device == mobile && *at > SimTime::ZERO => Some((*at, *network)),
        _ => None,
    });
    assert_eq!(
        replug,
        Some((SimTime::from_secs(35), ScenarioSpec::network_addr(1)))
    );
    // The temporary registration completes after the scripted re-plug.
    assert!(probe.events().iter().any(|e| matches!(
        e,
        RunEvent::HandshakeCompleted { at, device, .. }
            if *device == mobile && *at > SimTime::from_secs(35)
    )));
}

#[test]
fn suite_report_is_invariant_under_thread_count() {
    // Acceptance: an 8-cell suite on ≥2 worker threads produces the same
    // report as on 1 thread (wall-clock measurements aside). The grid spans
    // the control-plan axis too: commanded cells carry a ControlReport that
    // must be equally thread-count invariant.
    let base = ScenarioSpec::paper_testbed(0).with_horizon(SimDuration::from_secs(25));
    let slowdown = ControlPlan::new().command_at(
        SimTime::from_secs(12),
        CommandTarget::AllDevices,
        FleetCommand::SetMeasureInterval {
            interval: SimDuration::from_millis(400),
        },
    );
    let grid = |threads: usize| {
        Suite::new(base.clone())
            .over_seeds([601, 602])
            .over_devices_per_network([1, 2])
            .over_control_plans([
                ("uncommanded", ControlPlan::new()),
                ("slowdown", slowdown.clone()),
            ])
            .with_threads(threads)
            .run()
            .unwrap()
    };
    let serial = grid(1);
    let parallel = grid(3);
    assert_eq!(serial.threads_used, 1);
    assert_eq!(parallel.threads_used, 3);
    assert_eq!(serial.cells.len(), 8);
    assert_eq!(parallel.cells.len(), 8);
    assert!(
        serial
            .cells
            .iter()
            .any(|c| c.key.control_plan.as_deref() == Some("slowdown")
                && c.report.control.as_ref().is_some_and(|r| r.fully_acked())),
        "the commanded cells completed their rollout"
    );
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(a.key, b.key, "grid order must not depend on threads");
        assert_eq!(a.spec, b.spec);
        assert_reports_identical(&a.report, &b.report, "thread-count invariance");
    }
    assert_eq!(
        serial.aggregates.accuracy_overhead_percent,
        parallel.aggregates.accuracy_overhead_percent
    );
    assert_eq!(
        serial.aggregates.handshake_latency_s,
        parallel.aggregates.handshake_latency_s
    );
}

#[test]
fn suite_cells_match_standalone_experiments() {
    // A cell's report is exactly what running its spec alone produces.
    let base = mobility_spec(603).with_horizon(SimDuration::from_secs(45));
    let suite = Suite::new(base).over_seeds([603, 604]).with_threads(2);
    let cells = suite.cells();
    let report = suite.run().unwrap();
    for ((_, spec), cell) in cells.into_iter().zip(&report.cells) {
        let standalone = Experiment::new(spec).run().unwrap();
        assert_reports_identical(&standalone, &cell.report, "suite vs standalone");
    }
}
