//! Ordering guarantees of the `WorldNotification` stream: notifications are
//! monotone in `at` across plug/unplug *and* fault events, and the stream is
//! byte-identical whether a run is stepped or executed in one shot.

use rtem::prelude::*;

/// A scenario that exercises every notification source at once: scripted
/// mobility, sealed blocks, handshakes, plus fault injection / clearing /
/// detection.
fn busy_spec(seed: u64) -> ScenarioSpec {
    let home = ScenarioSpec::network_addr(0);
    let away = ScenarioSpec::network_addr(1);
    let mobile = ScenarioSpec::device_id(0, 0);
    let victim = ScenarioSpec::device_id(1, 0);
    ScenarioSpec::paper_testbed(seed)
        .with_horizon(SimDuration::from_secs(80))
        .unplug_at(SimTime::from_secs(30), mobile)
        .plug_in_at(SimTime::from_secs(45), mobile, away)
        .with_fault_plan(
            FaultPlan::new()
                .sensor_fault_between(
                    SimTime::from_secs(20),
                    SimTime::from_secs(40),
                    victim,
                    SensorFaultKind::StuckAt { level_ma: 3.0 },
                )
                .tamper_at(SimTime::from_secs(33), home),
        )
}

#[test]
fn notifications_are_monotone_in_time_across_all_kinds() {
    let handle = Experiment::new(busy_spec(5))
        .start_probed(RecordingProbe::default())
        .unwrap();
    let (_, probe) = handle.finish_probed();
    let events = probe.events();
    // Every source fired.
    assert!(events
        .iter()
        .any(|e| matches!(e, RunEvent::PluggedIn { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, RunEvent::Unplugged { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, RunEvent::BlockSealed { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, RunEvent::HandshakeCompleted { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, RunEvent::FaultInjected { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, RunEvent::FaultCleared { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, RunEvent::FaultDetected { .. })));
    // The full stream is monotone in dispatch time.
    let ordered: Vec<_> = events.iter().collect();
    for pair in ordered.windows(2) {
        assert!(
            pair[0].at() <= pair[1].at(),
            "out of order: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
}

#[test]
fn stepping_and_one_shot_produce_identical_streams() {
    // One shot.
    let handle = Experiment::new(busy_spec(6))
        .start_probed(RecordingProbe::default())
        .unwrap();
    let (_, one_shot) = handle.finish_probed();

    // Stepped with a deliberately window-misaligned stride.
    let mut handle = Experiment::new(busy_spec(6))
        .start_probed(RecordingProbe::default())
        .unwrap();
    while !handle.is_finished() {
        handle.step(SimDuration::from_millis(3_700));
    }
    let (_, stepped) = handle.finish_probed();

    assert_eq!(one_shot.events(), stepped.events());
    assert_eq!(
        format!("{:?}", one_shot.events()),
        format!("{:?}", stepped.events()),
        "byte-identical notification stream"
    );
}
