//! Cross-layer bill/ledger reconciliation.
//!
//! The billing engine and the tamper-evident ledger account for the same
//! records through different code paths: `bill_record` prices a record the
//! moment it is verified, `stage`/`commit_block` seal it into the chain at
//! the window boundary. These tests pin the invariant that makes a bill
//! auditable: for every network, the charge on its bills equals the charge
//! recorded in its *own* ledger under its billing authority
//! (`billed_by == self`), committed plus still-staged — under every tariff
//! structure and across the failover/roaming forwarding paths where
//! double-billing would creep in.

use rtem::prelude::*;

/// Every tariff variant, exercised against every scenario below.
fn tariff_variants() -> Vec<(&'static str, Tariff)> {
    vec![
        ("flat", Tariff::flat(1.0)),
        ("tou", Tariff::evening_peak(1.0)),
        ("tiered", Tariff::two_tier(1.0, 5.0)),
        (
            "demand",
            Tariff::DemandCharge {
                price_per_mwh: 1.0,
                demand_price_per_ma: 0.02,
                window: SimDuration::from_secs(5),
            },
        ),
    ]
}

/// The example scenarios: the paper's testbed, a roaming fleet exercising
/// the forwarded-consumption path, and a diurnal workload neighborhood.
fn scenarios() -> Vec<(&'static str, ScenarioSpec)> {
    let testbed = ScenarioSpec::paper_testbed(41).with_horizon(SimDuration::from_secs(45));

    // Five of eight scooters roam out of their home network mid-run, so a
    // share of each bill arrives over the backhaul as forwarded records.
    let mut fleet = ScenarioSpec::single_network(8, 99)
        .with_load(DeviceLoad::EScooter)
        .with_empty_networks(2)
        .with_verification_window(SimDuration::from_secs(5))
        .with_horizon(SimDuration::from_secs(120));
    for i in 0..5u64 {
        let id = ScenarioSpec::device_id(0, i as u32);
        let destination = ScenarioSpec::network_addr(1 + (i % 2) as u32);
        fleet = fleet
            .unplug_at(SimTime::from_secs(20 + i * 5), id)
            .plug_in_at(SimTime::from_secs(45 + i * 5), id, destination);
    }

    let mut neighborhood = ScenarioSpec::paper_testbed(7)
        .with_devices_per_network(3)
        .with_workload(WorkloadModel::neighborhood())
        .with_horizon(SimDuration::from_secs(2 * 3600))
        .with_verification_window(SimDuration::from_secs(600));
    neighborhood.t_measure = SimDuration::from_secs(1);
    neighborhood.upstream_sample_interval = SimDuration::from_secs(1);

    vec![
        ("paper_testbed", testbed),
        ("roaming_fleet", fleet),
        ("neighborhood", neighborhood),
    ]
}

/// Charge recorded in `network`'s own ledger under its billing authority,
/// committed and staged, summed per device.
fn ledger_charge_by_device(
    report: &RunReport,
    network: AggregatorAddr,
) -> std::collections::BTreeMap<u64, u64> {
    let ledger = report
        .world()
        .aggregator(network)
        .expect("network exists")
        .ledger();
    let mut by_device = std::collections::BTreeMap::new();
    for entry in ledger
        .all_entries()
        .iter()
        .chain(ledger.staged_entries().iter())
    {
        if entry.billed_by == network.0 {
            *by_device.entry(entry.device_id).or_default() += entry.charge_uas;
        }
    }
    by_device
}

#[test]
fn bills_reconcile_with_ledgers_under_every_tariff() {
    for (scenario_name, base) in scenarios() {
        for (tariff_name, tariff) in tariff_variants() {
            let spec = base.clone().with_tariff(tariff);
            let report = Experiment::new(spec).run().expect("valid spec");
            let label = format!("{scenario_name}/{tariff_name}");
            assert!(
                !report.bills.is_empty(),
                "{label}: scenario produced no bills"
            );
            assert!(report.all_ledgers_clean(), "{label}: ledger audit failed");

            for network in report.world().network_addresses() {
                // No (device, sequence) pair may be billed twice under one
                // billing authority — the invariant a retransmitted roaming
                // report would break if the collector re-forwarded
                // duplicates (bill == ledger alone cannot see it, because
                // billing and staging double-count together).
                let ledger = report
                    .world()
                    .aggregator(network)
                    .expect("network exists")
                    .ledger();
                let mut seen = std::collections::BTreeSet::new();
                for entry in ledger
                    .all_entries()
                    .iter()
                    .chain(ledger.staged_entries().iter())
                {
                    if entry.billed_by == network.0 {
                        assert!(
                            seen.insert((entry.device_id, entry.sequence)),
                            "{label}: {network} billed device {} sequence {} twice",
                            entry.device_id,
                            entry.sequence
                        );
                    }
                }
                let ledger_charge = ledger_charge_by_device(&report, network);
                let billed: Vec<&BillLine> = report
                    .bills
                    .iter()
                    .filter(|b| b.network == network)
                    .collect();
                // Device sets agree exactly.
                let billed_devices: Vec<u64> = billed.iter().map(|b| b.device.0).collect();
                let ledger_devices: Vec<u64> = ledger_charge.keys().copied().collect();
                assert_eq!(
                    billed_devices, ledger_devices,
                    "{label}: {network} bills a different device set than its ledger"
                );
                // Per-device charge agrees to the microamp-second: the bill
                // and the ledger entry are written from the same verified
                // record, so any drift means double-billing or a dropped
                // stage on the roaming/failover path.
                for bill in &billed {
                    assert_eq!(
                        bill.charge_uas, ledger_charge[&bill.device.0],
                        "{label}: {network} {:?} bill/ledger charge mismatch",
                        bill.device
                    );
                }
            }
        }
    }
}

#[test]
fn bill_energy_components_reconcile_with_cost() {
    for (scenario_name, base) in scenarios() {
        for (tariff_name, tariff) in tariff_variants() {
            let spec = base.clone().with_tariff(tariff);
            let report = Experiment::new(spec).run().expect("valid spec");
            let label = format!("{scenario_name}/{tariff_name}");
            for bill in &report.bills {
                // The breakdown is a partition of the cost...
                assert!(
                    (bill.cost - bill.breakdown.total()).abs() <= 1e-9 * bill.cost.abs().max(1.0),
                    "{label}: {:?} cost {} != breakdown {}",
                    bill.device,
                    bill.cost,
                    bill.breakdown.total()
                );
                // ...the roaming component is a subset of the energy
                // component...
                assert!(
                    bill.breakdown.roaming <= bill.breakdown.energy + 1e-12,
                    "{label}: {:?} roaming exceeds energy",
                    bill.device
                );
                // ...and a device that never roamed has no roaming cost.
                if bill.roaming_charge_uas == 0 {
                    assert_eq!(
                        bill.breakdown.roaming, 0.0,
                        "{label}: {:?} roaming cost without roamed charge",
                        bill.device
                    );
                }
            }
        }
    }
}

#[test]
fn roaming_fleet_actually_roams_and_is_billed_once() {
    // Sanity-check that the fleet scenario exercises the forwarding path at
    // all (otherwise the reconciliation above would be vacuous there), and
    // that the roamed share is billed exactly once: at home, never at the
    // collector.
    let (_, fleet) = scenarios().remove(1);
    let report = Experiment::new(fleet).run().expect("valid spec");
    let home = ScenarioSpec::network_addr(0);
    let roamed_bills = report
        .bills
        .iter()
        .filter(|b| b.roaming_charge_uas > 0)
        .count();
    assert!(roamed_bills >= 3, "only {roamed_bills} bills show roaming");
    // Every bill hangs off the home network: foreign collectors forward,
    // they do not bill.
    for bill in &report.bills {
        assert_eq!(
            bill.network, home,
            "{:?} billed by a collector",
            bill.device
        );
    }
}
