//! Seeded property tests for the meter-protocol codecs: every real
//! [`MeterKind`] round-trips losslessly over the full simulated value
//! ranges, and corrupted frames come back as typed [`CodecError`]s —
//! never panics.
//!
//! Mirrors the `tests/localstore_model.rs` pattern: a `SimRng`-seeded
//! corpus keeps the runs deterministic, so a failure reproduces from the
//! constants in this file alone.

use rtem::codecs::{self, CodecError, MeterKind, Telegram};
use rtem::net::packet::{AggregatorAddr, DeviceId, MeasurementRecord};
use rtem::sim::rng::SimRng;

/// A u64 biased toward the values that break naive encoders: zero, the
/// maximum, values hugging either end, and the uniform middle.
fn wild_u64(rng: &mut SimRng) -> u64 {
    match rng.next_below(5) {
        0 => 0,
        1 => u64::MAX,
        2 => rng.next_below(10_000),
        3 => u64::MAX - rng.next_below(10_000),
        _ => rng.next_u64(),
    }
}

fn random_record(rng: &mut SimRng) -> MeasurementRecord {
    MeasurementRecord {
        device: DeviceId(wild_u64(rng)),
        sequence: wild_u64(rng),
        interval_start_us: wild_u64(rng),
        interval_end_us: wild_u64(rng),
        mean_current_ua: wild_u64(rng),
        charge_uas: wild_u64(rng),
        backfilled: rng.chance(0.5),
    }
}

fn random_telegram(rng: &mut SimRng) -> Telegram {
    let device = DeviceId(wild_u64(rng));
    // Real network addresses never reach u32::MAX (the spec validator caps
    // the address space below it), which is why the binary codecs can use
    // it as their no-master sentinel.
    let master = rng
        .chance(0.8)
        .then(|| AggregatorAddr(rng.next_below(u64::from(u32::MAX)) as u32));
    let count = match rng.next_below(4) {
        0 => 0,
        1 => 1,
        2 => rng.next_below(8) as usize,
        _ => rng.next_below(40) as usize,
    };
    let records = (0..count).map(|_| random_record(rng)).collect();
    Telegram::new(device, master, records)
}

#[test]
fn every_real_kind_round_trips_a_seeded_corpus_losslessly() {
    let mut rng = SimRng::seed_from_u64(0xC0DEC2026);
    for case in 0..150 {
        let telegram = random_telegram(&mut rng);
        for kind in MeterKind::REAL {
            let bytes = codecs::encode(kind, &telegram)
                .unwrap_or_else(|e| panic!("case {case}: {kind} refused to encode: {e}"));
            let parsed = codecs::parse(kind, &bytes)
                .unwrap_or_else(|e| panic!("case {case}: {kind} rejected its own frame: {e}"));
            assert_eq!(parsed, telegram, "case {case}: {kind} round-trip lost data");
        }
    }
}

#[test]
fn single_bit_flips_always_surface_as_typed_errors() {
    let mut rng = SimRng::seed_from_u64(0xB17_F11B);
    for case in 0..40 {
        let telegram = random_telegram(&mut rng);
        for kind in MeterKind::REAL {
            let clean = codecs::encode(kind, &telegram).expect("real kinds encode");
            for _ in 0..12 {
                let mut corrupt = clean.clone();
                let bit = rng.next_below(corrupt.len() as u64 * 8) as usize;
                corrupt[bit / 8] ^= 1 << (bit % 8);
                let result = codecs::parse(kind, &corrupt);
                match result {
                    Err(CodecError::Framing(_))
                    | Err(CodecError::Checksum { .. })
                    | Err(CodecError::Semantic(_)) => {}
                    Ok(parsed) => panic!(
                        "case {case}: {kind} silently accepted a flipped bit \
                         (bit {bit}, parsed {parsed:?})"
                    ),
                }
            }
        }
    }
}

#[test]
fn arbitrary_corruption_never_panics() {
    let mut rng = SimRng::seed_from_u64(0xDEAD_BEA7);
    for _ in 0..120 {
        let telegram = random_telegram(&mut rng);
        for kind in MeterKind::REAL {
            let clean = codecs::encode(kind, &telegram).expect("real kinds encode");
            let mut corrupt = clean.clone();
            match rng.next_below(4) {
                0 => {
                    // A burst of bit flips.
                    for _ in 0..=rng.next_below(16) {
                        let bit = rng.next_below(corrupt.len().max(1) as u64 * 8) as usize;
                        if let Some(byte) = corrupt.get_mut(bit / 8) {
                            *byte ^= 1 << (bit % 8);
                        }
                    }
                }
                1 => {
                    // Truncation anywhere, including to nothing.
                    let keep = rng.next_below(corrupt.len() as u64 + 1) as usize;
                    corrupt.truncate(keep);
                }
                2 => {
                    // A mangled span of random bytes.
                    if !corrupt.is_empty() {
                        let start = rng.next_below(corrupt.len() as u64) as usize;
                        let span = (1 + rng.next_below(12) as usize).min(corrupt.len() - start);
                        for byte in &mut corrupt[start..start + span] {
                            *byte = rng.next_u64() as u8;
                        }
                    }
                }
                _ => {
                    // Trailing garbage appended past the frame end.
                    for _ in 0..=rng.next_below(24) {
                        corrupt.push(rng.next_u64() as u8);
                    }
                }
            }
            // The only requirement: a typed result, never a panic.
            let _ = codecs::parse(kind, &corrupt);
        }
    }
}

#[test]
fn cross_codec_confusion_is_rejected_not_panicking() {
    let mut rng = SimRng::seed_from_u64(0xC0F_FEE);
    for _ in 0..30 {
        let telegram = random_telegram(&mut rng);
        for produced_by in MeterKind::REAL {
            let bytes = codecs::encode(produced_by, &telegram).expect("real kinds encode");
            for parsed_as in MeterKind::REAL {
                if parsed_as == produced_by {
                    continue;
                }
                assert!(
                    codecs::parse(parsed_as, &bytes).is_err(),
                    "{parsed_as} accepted a {produced_by} frame"
                );
            }
        }
    }
}

#[test]
fn pure_garbage_is_rejected_for_every_kind() {
    let mut rng = SimRng::seed_from_u64(0x6A4BA6E);
    for _ in 0..200 {
        let len = rng.next_below(200) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        for kind in MeterKind::REAL {
            assert!(
                codecs::parse(kind, &garbage).is_err(),
                "{kind} accepted {len} random bytes"
            );
        }
    }
}
