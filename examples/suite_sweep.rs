//! Suite quickstart: sweep the paper's testbed over a small seed × device
//! grid on a multi-threaded worker pool and print the per-cell results plus
//! the cross-cell aggregates. Doubles as the CI suite-smoke: a 2×2 grid on
//! 2 worker threads with a short horizon.
//!
//! ```bash
//! cargo run --example suite_sweep
//! ```

use rtem::prelude::*;

fn main() {
    let base = ScenarioSpec::paper_testbed(0).with_horizon(SimDuration::from_secs(30));
    let suite = Suite::new(base)
        .over_seeds([41, 42])
        .over_devices_per_network([1, 2])
        .with_threads(2);
    println!(
        "sweeping a {}-cell grid on 2 worker threads...",
        suite.len()
    );

    let report = suite.run().expect("sweep specs are valid");

    println!("\n== per-cell results ==");
    for cell in &report.cells {
        println!(
            "  [{}] {}: {} blocks, {} handshakes, ledgers clean = {}, {} ms",
            cell.key.index,
            cell.key,
            cell.report.sealed_blocks(),
            cell.report.metrics.handshakes.len(),
            cell.report.all_ledgers_clean(),
            cell.wall.as_millis(),
        );
    }

    println!("\n== cross-cell aggregates ==");
    if let Some(stats) = report.aggregates.accuracy_overhead_percent {
        println!(
            "  accuracy overhead : mean {:.2}% (min {:.2}, max {:.2}, p95 {:.2}) over {} windows",
            stats.mean, stats.min, stats.max, stats.p95, stats.count
        );
    }
    if let Some(stats) = report.aggregates.handshake_latency_s {
        println!(
            "  handshake latency : mean {:.2} s (min {:.2}, max {:.2}, p95 {:.2}) over {} handshakes",
            stats.mean, stats.min, stats.max, stats.p95, stats.count
        );
    }
    let runtime = report.aggregates.cell_runtime_s;
    println!(
        "  cell runtime      : mean {:.0} ms (p95 {:.0} ms); sweep total {} ms on {} threads",
        runtime.mean * 1000.0,
        runtime.p95 * 1000.0,
        report.wall.as_millis(),
        report.threads_used,
    );

    assert!(
        report.cells.iter().all(|c| c.report.all_ledgers_clean()),
        "every cell's ledgers must audit clean"
    );
}
