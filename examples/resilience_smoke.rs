//! Break things on purpose: one run with all six fault families injected.
//!
//! A `FaultPlan` schedules a stuck sensor, a ledger forgery, a Wi-Fi loss
//! burst, a firmware crash, an aggregator outage with failover and a
//! byzantine consensus minority on the paper's two-network testbed, then
//! prints which faults the system caught, through which signal, and how
//! fast. Doubles as the CI smoke test of the subsystem.
//!
//! ```bash
//! cargo run --example resilience_smoke
//! ```

use rtem::prelude::*;

fn main() {
    let home = ScenarioSpec::network_addr(0);
    let backup = ScenarioSpec::network_addr(1);
    let sensor_victim = ScenarioSpec::device_id(0, 0);
    let crash_victim = ScenarioSpec::device_id(1, 0);

    let lossy_wifi = rtem::net::link::LinkConfig {
        loss_probability: 0.95,
        ..rtem::net::link::LinkConfig::wifi()
    };
    let plan = FaultPlan::new()
        // A latched ADC reports a flat 5 mA while the device keeps charging.
        .sensor_fault_between(
            SimTime::from_secs(15),
            SimTime::from_secs(30),
            sensor_victim,
            SensorFaultKind::StuckAt { level_ma: 5.0 },
        )
        // Someone rewrites a committed consumption record in place.
        .tamper_at(SimTime::from_secs(25), home)
        // A Wi-Fi brownout: 95 % loss on every access link for ten seconds.
        .link_burst(
            SimTime::from_secs(34),
            SimTime::from_secs(44),
            LinkTarget::Wifi { network: None },
            lossy_wifi,
        )
        // A firmware crash loses the in-flight buffer; reboot at 58 s.
        .crash_between(SimTime::from_secs(48), SimTime::from_secs(58), crash_victim)
        // The home aggregator goes dark; the backup adopts its devices.
        .outage_between(
            SimTime::from_secs(62),
            SimTime::from_secs(78),
            home,
            Some(backup),
        )
        // One of the backup network's devices turns byzantine.
        .byzantine_between(SimTime::from_secs(82), SimTime::from_secs(95), backup, 1);

    let spec = ScenarioSpec::paper_testbed(2024)
        .with_horizon(SimDuration::from_secs(100))
        .with_fault_plan(plan);
    println!("# Resilience smoke: 6 fault families on the paper testbed, 100 s");
    let report = Experiment::new(spec).run().expect("spec is valid");
    let resilience = report.resilience.as_ref().expect("faulted run");

    println!("\nid  family     injected_s  cleared_s  detected_s  signal");
    for fault in &resilience.faults {
        let opt =
            |t: Option<SimTime>| t.map_or("-".to_string(), |t| format!("{:.0}", t.as_secs_f64()));
        println!(
            "{:<3} {:<10} {:>10}  {:>9}  {:>10}  {:?}",
            fault.id,
            fault.family.to_string(),
            opt(fault.injected_at),
            opt(fault.cleared_at),
            opt(fault.detected_at),
            fault.signal,
        );
    }

    println!("\nfamily     injected detected rate  mean_latency_s");
    for family in &resilience.families {
        println!(
            "{:<10} {:>8} {:>8} {:>5} {:>15}",
            family.family.to_string(),
            family.injected,
            family.detected,
            family
                .detection_rate()
                .map_or("-".into(), |r| format!("{r:.2}")),
            family
                .mean_detection_latency_s
                .map_or("-".into(), |l| format!("{l:.1}")),
        );
    }

    println!(
        "\naccuracy: faulted {:.2}% vs clean twin {:.2}% (delta {:+.2} pts)",
        resilience.faulted_mean_overhead_percent.unwrap_or(f64::NAN),
        resilience.clean_mean_overhead_percent.unwrap_or(f64::NAN),
        resilience.accuracy_delta_percent().unwrap_or(f64::NAN),
    );
    println!(
        "audit: {} finding(s), {} attributed to injections, {} unexplained",
        resilience.audit_findings,
        resilience.audit_findings_attributed,
        resilience.audit_findings_unattributed(),
    );

    // CI smoke assertions: the forgery must be caught by the audit, every
    // audit finding must trace back to an injection, and the byzantine
    // minority must be voted down.
    let tamper = resilience.family(FaultFamily::Tamper).expect("tamper ran");
    assert_eq!(tamper.detection_rate(), Some(1.0), "tamper must be caught");
    assert_eq!(resilience.audit_findings_unattributed(), 0);
    let byz = resilience
        .family(FaultFamily::Byzantine)
        .expect("byzantine ran");
    assert_eq!(byz.detection_rate(), Some(1.0), "minority must be rejected");
    assert!(!report.all_ledgers_clean(), "the forgery is in the ledger");
    println!("\nOK: forgeries caught, findings attributed, minority rejected");
}
