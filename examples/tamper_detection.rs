//! Tamper detection: demonstrates both protection layers of the
//! architecture, driving a single aggregator directly through the facade's
//! substrate paths (`rtem::aggregator`, `rtem::chain`).
//!
//! 1. **Storage tampering** — an attacker rewrites committed records in the
//!    aggregator's store; the hash chain localizes the manipulation.
//! 2. **Source tampering** — a device's firmware under-reports consumption;
//!    the hash chain cannot help (the lie is committed faithfully), but the
//!    aggregator's complementary system-level measurement and the
//!    entropy-based detector flag it.
//!
//! ```bash
//! cargo run --example tamper_detection
//! ```

use rtem::aggregator::aggregator::{Aggregator, AggregatorConfig};
use rtem::chain::audit::audit_chain;
use rtem::chain::ledger::LedgerEntry;
use rtem::net::packet::{MeasurementRecord, Packet};
use rtem::prelude::*;

fn main() {
    println!("== part 1: storage-level tampering ==");
    storage_tampering();
    println!("\n== part 2: under-reporting device ==");
    under_reporting();
}

fn storage_tampering() {
    let mut aggregator = Aggregator::new(
        AggregatorConfig::testbed(AggregatorAddr(1)),
        SimRng::seed_from_u64(1),
    );
    aggregator
        .register_master(DeviceId(1), SimTime::ZERO)
        .unwrap();

    // Normal operation: 10 windows of honest reports.
    for window in 0..10u64 {
        let records: Vec<MeasurementRecord> = (0..10)
            .map(|i| honest_record(window * 10 + i, 180.0))
            .collect();
        aggregator.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records,
            },
            SimTime::from_secs(window + 1),
        );
        aggregator.end_window(SimTime::from_secs(window + 1));
    }
    let anchor = aggregator.ledger_anchor();
    println!(
        "sealed {} blocks, anchor {}",
        aggregator.ledger().chain().len(),
        anchor
    );

    // The attacker rewrites a committed record to claim 1 µA·s.
    let forged = LedgerEntry {
        device_id: 1,
        collected_by: 1,
        billed_by: 1,
        sequence: 12,
        interval_start_us: 0,
        interval_end_us: 100_000,
        charge_uas: 1,
        backfilled: false,
    };
    aggregator
        .ledger_mut_for_experiment()
        .chain_mut_for_experiment()
        .block_mut_for_experiment(4)
        .expect("block 4 exists")
        .tamper_record_for_experiment(2, forged.to_bytes());
    println!("attacker rewrote record 2 of block 4");

    let report = audit_chain(aggregator.ledger().chain(), Some(anchor));
    println!(
        "audit: clean = {}, first bad block = {:?}, findings = {}",
        report.is_clean(),
        report.first_bad_block(),
        report.findings.len()
    );
    assert!(!report.is_clean());
}

fn under_reporting() {
    let mut aggregator = Aggregator::new(
        AggregatorConfig::testbed(AggregatorAddr(1)),
        SimRng::seed_from_u64(2),
    );
    aggregator
        .register_master(DeviceId(1), SimTime::ZERO)
        .unwrap();
    aggregator
        .register_master(DeviceId(2), SimTime::ZERO)
        .unwrap();

    // Device 1 is honest (180 mA); device 2 actually draws 200 mA but its
    // tampered firmware reports a constant 40 mA.
    for window in 0..10u64 {
        for (device, reported) in [(DeviceId(1), 180.0), (DeviceId(2), 40.0)] {
            let records: Vec<MeasurementRecord> = (0..10)
                .map(|i| MeasurementRecord {
                    device,
                    ..honest_record(window * 10 + i, reported)
                })
                .collect();
            aggregator.handle_device_packet(
                &Packet::ConsumptionReport {
                    device,
                    master: Some(AggregatorAddr(1)),
                    records,
                },
                SimTime::from_secs(window + 1),
            );
        }
        // The aggregator's own meter sees the true 180 + 200 mA (plus losses).
        for s in 0..10u64 {
            aggregator.observe_upstream(
                SimTime::from_millis(window * 1000 + s * 100),
                Milliamps::new(385.0),
            );
        }
        if let Some(verdict) = aggregator.end_window(SimTime::from_secs(window + 1)) {
            println!(
                "window {:>2}: reported {:>6.1} mA, measured {:>6.1} mA, residual {:>6.1} mA, anomalous = {}",
                window,
                verdict.reported_sum_ma,
                verdict.measured_total_ma,
                verdict.residual_ma,
                verdict.anomalous
            );
        }
    }
    let suspicious = aggregator.entropy_detector().suspicious_devices();
    println!("entropy detector flags: {suspicious:?}");
    println!(
        "ledger still verifies: {} (the lie is committed faithfully — only the complementary measurement catches it)",
        aggregator.ledger().chain().verify().is_ok()
    );
}

fn honest_record(seq: u64, current_ma: f64) -> MeasurementRecord {
    MeasurementRecord {
        device: DeviceId(1),
        sequence: seq,
        interval_start_us: seq * 100_000,
        interval_end_us: (seq + 1) * 100_000,
        mean_current_ua: (current_ma * 1000.0) as u64,
        charge_uas: (current_ma * 100.0) as u64,
        backfilled: false,
    }
}
