//! Quickstart: declare the paper's two-network testbed as a `ScenarioSpec`,
//! stream it for a minute of simulated time — printing live progress one
//! verification window at a time — and print what each aggregator saw.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use rtem::prelude::*;

fn main() {
    // Two networks, two charging ESP32-class devices each, reporting every
    // 100 ms — the testbed of §III-A.
    let spec = ScenarioSpec::paper_testbed(42).with_horizon(SimDuration::from_secs(60));

    println!(
        "streaming the testbed for {} of simulated time...",
        SimDuration::from_secs(60)
    );
    let mut handle = Experiment::new(spec)
        .start()
        .expect("the testbed spec is valid");
    while !handle.is_finished() {
        handle.step_window();
        let progress = handle.progress();
        println!(
            "  t = {:>4.0} s ({:>3.0}%): {} blocks sealed, {} handshakes done, {} in flight",
            progress.position.as_secs_f64(),
            progress.fraction * 100.0,
            progress.sealed_blocks,
            progress.completed_handshakes,
            progress.handshakes_in_flight,
        );
    }
    let report = handle.finish();

    println!("\n== network summaries ==");
    for network in &report.metrics.networks {
        println!(
            "{}: {} members, {} reports accepted, {} blocks sealed, {} ledger entries, mean network current {:.1} mA",
            network.network,
            network.members,
            network.reports_accepted,
            network.blocks,
            network.ledger_entries,
            network.mean_network_current_ma,
        );
    }

    if let Some(stats) = report.handshakes {
        println!(
            "\nregistration handshakes: {} completed, mean {:.2} s (range {:.2}–{:.2} s)",
            stats.count, stats.mean_s, stats.min_s, stats.max_s
        );
    }

    println!("\n== decentralized vs aggregator measurement (10 s windows, network 1) ==");
    println!(
        "{:>6} {:>16} {:>16} {:>10}",
        "window", "devices (mA·s)", "aggregator (mA·s)", "gap %"
    );
    let accuracy = report
        .network_accuracy(ScenarioSpec::network_addr(0))
        .expect("network 1 was simulated");
    for window in accuracy
        .windows
        .iter()
        .filter(|w| w.devices_total_mas > 0.0)
    {
        println!(
            "{:>6} {:>16.1} {:>16.1} {:>9.2}%",
            window.index,
            window.devices_total_mas,
            window.aggregator_mas,
            window.overhead_percent()
        );
    }

    println!("\nper-device bills at the home aggregators:");
    for bill in &report.bills {
        println!(
            "  {} billed by {}: {:.2} mWh ({} records, {} backfilled)",
            bill.device,
            bill.network,
            bill.energy_at(Millivolts::usb_bus()).value(),
            bill.records,
            bill.backfilled_records
        );
    }

    println!(
        "\nledgers clean: {} (audited against each aggregator's anchor)",
        report.all_ledgers_clean()
    );
}
