//! Quickstart: build the paper's two-network testbed, run it for a minute of
//! simulated time, and print what each aggregator saw.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use rtem_core::metrics::accuracy_windows;
use rtem_core::scenario::ScenarioBuilder;
use rtem_sim::time::{SimDuration, SimTime};

fn main() {
    // Two networks, two charging ESP32-class devices each, reporting every
    // 100 ms — the testbed of §III-A.
    let mut world = ScenarioBuilder::paper_testbed(42).build();

    let horizon = SimTime::from_secs(60);
    println!("running the testbed for {} of simulated time...", SimDuration::from_secs(60));
    world.run_until(horizon);

    let metrics = world.metrics();
    println!("\n== network summaries ==");
    for network in &metrics.networks {
        println!(
            "{}: {} members, {} reports accepted, {} blocks sealed, {} ledger entries, mean network current {:.1} mA",
            network.network,
            network.members,
            network.reports_accepted,
            network.blocks,
            network.ledger_entries,
            network.mean_network_current_ma,
        );
    }

    if let Some(stats) = metrics.handshake_stats() {
        println!(
            "\nregistration handshakes: {} completed, mean {:.2} s (range {:.2}–{:.2} s)",
            stats.count, stats.mean_s, stats.min_s, stats.max_s
        );
    }

    println!("\n== decentralized vs aggregator measurement (10 s windows, network 1) ==");
    println!("{:>6} {:>16} {:>16} {:>10}", "window", "devices (mA·s)", "aggregator (mA·s)", "gap %");
    for window in accuracy_windows(
        &world,
        ScenarioBuilder::network_addr(0),
        SimDuration::from_secs(10),
        horizon,
    ) {
        if window.devices_total_mas > 0.0 {
            println!(
                "{:>6} {:>16.1} {:>16.1} {:>9.2}%",
                window.index,
                window.devices_total_mas,
                window.aggregator_mas,
                window.overhead_percent()
            );
        }
    }

    println!("\nper-device bills at the home aggregators:");
    for addr in world.network_addresses() {
        let aggregator = world.aggregator(addr).expect("network exists");
        for (device, bill) in aggregator.billing().iter() {
            println!(
                "  {} billed by {}: {:.2} mWh ({} records, {} backfilled)",
                device,
                addr,
                bill.energy_at(rtem_sensors::energy::Millivolts::usb_bus()).value(),
                bill.records,
                bill.backfilled_records
            );
        }
    }
}
