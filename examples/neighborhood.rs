//! Model a neighborhood: one declarative spec turns the paper's lab bench
//! into a city block — homes with morning/evening peaks, a shop, a shared
//! EV-charging site and a solar roof, billed under an evening-peak
//! time-of-use tariff over one simulated day.
//!
//! ```bash
//! cargo run --example neighborhood
//! ```

use rtem::prelude::*;

fn main() {
    // Two networks x four customers; the Mix workload assigns residential /
    // commercial / EV-fleet / solar round-robin by device ordinal.
    let mut spec = ScenarioSpec::paper_testbed(7)
        .with_devices_per_network(4)
        .with_workload(WorkloadModel::neighborhood())
        .with_tariff(Tariff::evening_peak(1.0))
        .with_horizon(SimDuration::from_secs(24 * 3600))
        .with_verification_window(SimDuration::from_secs(3600));
    // Diurnal shapes move at hour scale: per-second reporting keeps the day
    // cheap to simulate without blurring any workload feature.
    spec.t_measure = SimDuration::from_secs(1);
    spec.upstream_sample_interval = SimDuration::from_secs(1);

    let report = Experiment::new(spec).run().expect("valid spec");

    println!("== the neighborhood after one simulated day ==");
    let kinds = ["residential", "commercial", "ev-fleet", "solar+home"];
    for (i, bill) in report.bills.iter().enumerate() {
        println!(
            "  {} ({:>11}): {:>9.1} mWh -> {:>9.1} units ({:.2} units/mWh effective)",
            bill.device,
            kinds[i % kinds.len()],
            bill.energy_at(Millivolts::usb_bus()).value(),
            bill.cost,
            bill.cost / bill.energy_at(Millivolts::usb_bus()).value(),
        );
    }
    println!(
        "  total: {:.1} units across {} customers",
        report.total_billed_cost(),
        report.bills.len()
    );

    println!("\n== verification stayed honest under the new shapes ==");
    for accuracy in &report.accuracy {
        if let Some(overhead) = accuracy.mean_overhead_percent() {
            println!(
                "  {}: mean aggregator-over-devices overhead {:.2} % ({} windows)",
                accuracy.network,
                overhead,
                accuracy.windows.len()
            );
        }
    }
    assert!(report.all_ledgers_clean(), "ledgers audit clean");
    println!("  all ledgers audit clean");
}
