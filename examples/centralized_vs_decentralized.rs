//! The Fig. 5 experiment as a runnable example: decentralized per-device
//! metering versus the centralized (aggregator-side) measurement, printed as
//! the stacked-bar data of the figure. A three-seed `Suite` backs the
//! summary band so it averages over sensor-noise realisations rather than
//! quoting a single run.
//!
//! ```bash
//! cargo run --example centralized_vs_decentralized
//! ```

use rtem::centralized::{CapabilityMatrix, MeteringComparison};
use rtem::prelude::*;

fn main() {
    let base = ScenarioSpec::paper_testbed(11).with_horizon(SimDuration::from_secs(120));
    println!("running the two-network testbed over three seeds...");
    let suite_report = Suite::new(base)
        .over_seeds([11, 12, 13])
        .run()
        .expect("valid specs");
    let report = &suite_report.cells[0].report;

    println!("\nFig. 5 data for network 1 (per 10 s window, seed 11):");
    println!(
        "{:>6} | {:>12} {:>12} | {:>14} | {:>8}",
        "window", "device 1", "device 2", "aggregator", "gap"
    );
    println!("{}", "-".repeat(64));
    let accuracy = report
        .network_accuracy(ScenarioSpec::network_addr(0))
        .expect("network 1 was simulated");
    for w in accuracy.settled_windows() {
        let mut devices: Vec<f64> = w.per_device_mas.values().copied().collect();
        devices.resize(2, 0.0);
        let comparison = MeteringComparison {
            decentralized_mas: w.devices_total_mas,
            centralized_mas: w.aggregator_mas,
        };
        println!(
            "{:>6} | {:>10.1}  {:>10.1}  | {:>12.1}   | {:>6.2}%",
            w.index,
            devices[0],
            devices[1],
            w.aggregator_mas,
            comparison.overhead_percent()
        );
    }
    if let Some(stats) = suite_report.aggregates.accuracy_overhead_percent {
        println!(
            "\naggregator reads {:.1}–{:.1}% above the device sum across {} windows of 3 seeds",
            stats.min, stats.max, stats.count
        );
        println!("(paper: 0.9–8.2%), driven by ohmic losses plus the 0.5 mA INA219 offset.");
    }

    println!("\ncapability comparison:");
    let c = CapabilityMatrix::centralized();
    let d = CapabilityMatrix::decentralized();
    println!("{:<36} {:>12} {:>14}", "", "centralized", "decentralized");
    println!(
        "{:<36} {:>12} {:>14}",
        "per-device attribution", c.per_device_attribution, d.per_device_attribution
    );
    println!(
        "{:<36} {:>12} {:>14}",
        "location-independent billing",
        c.location_independent_billing,
        d.location_independent_billing
    );
    println!(
        "{:<36} {:>12} {:>14}",
        "tamper-evident storage", c.tamper_evident_storage, d.tamper_evident_storage
    );
}
