//! Fleet billing: a larger deployment than the paper's testbed — one
//! operator with eight mobile devices roaming over three networks — showing
//! consolidated per-device billing, the load-balancing extension and the
//! device-level consensus extension in one run.
//!
//! ```bash
//! cargo run --example fleet_billing
//! ```

use rtem_core::consensus::{QuorumConsensus, Vote};
use rtem_core::loadbalance::{plan_balance, NetworkLoad};
use rtem_core::simulation::{World, WorldConfig};
use rtem_device::device::MeteringDevice;
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_net::rssi::Position;
use rtem_sensors::energy::Millivolts;
use rtem_sensors::profile::ChargingProfile;
use rtem_sim::prelude::*;

fn main() {
    let mut world = World::new(WorldConfig {
        verification_window: SimDuration::from_secs(5),
        seed: 99,
        ..WorldConfig::default()
    });
    let networks: Vec<AggregatorAddr> = (1..=3).map(AggregatorAddr).collect();
    for (i, &addr) in networks.iter().enumerate() {
        world.add_network(addr, Position::new(300.0 * i as f64, 0.0));
    }

    // Eight e-scooters, all registered to network 1 as their home.
    let fleet: Vec<DeviceId> = (1..=8).map(DeviceId).collect();
    for &id in &fleet {
        let rng = SimRng::seed_from_u64(1000 + id.0);
        let device = MeteringDevice::testbed(id, ChargingProfile::e_scooter(rng.derive(1)), rng);
        world.add_device(device);
        world.plug_in_now(id, AggregatorAddr(1));
    }

    // After half a minute, five scooters ride off and recharge elsewhere.
    for (i, &id) in fleet.iter().take(5).enumerate() {
        let destination = networks[1 + i % 2];
        world.schedule_unplug(SimTime::from_secs(30 + i as u64 * 5), id);
        world.schedule_plug_in(SimTime::from_secs(55 + i as u64 * 5), id, destination);
    }
    world.run_until(SimTime::from_secs(180));

    println!("== consolidated fleet bill at the home aggregator (network 1) ==");
    let home = world.aggregator(AggregatorAddr(1)).expect("home network");
    let mut total_cost = 0.0;
    for (device, bill) in home.billing().iter() {
        total_cost += bill.cost;
        println!(
            "  {}: {:>8.2} mWh ({:>5.1}% roamed), {} records",
            device,
            bill.energy_at(Millivolts::usb_bus()).value(),
            if bill.charge_uas > 0 {
                bill.roaming_charge_uas as f64 / bill.charge_uas as f64 * 100.0
            } else {
                0.0
            },
            bill.records
        );
    }
    println!("  fleet total cost: {total_cost:.3} units");

    println!("\n== load-balancing proposal (future-work extension) ==");
    let loads: Vec<NetworkLoad> = world
        .network_addresses()
        .into_iter()
        .map(|addr| {
            let agg = world.aggregator(addr).expect("network");
            let registered: Vec<DeviceId> = agg.registry().iter().map(|m| m.device).collect();
            NetworkLoad {
                network: addr,
                slot_capacity: 10,
                mobile: registered.clone(),
                registered,
                demand_ma: agg.network_series().stats().mean,
            }
        })
        .collect();
    for load in &loads {
        println!(
            "  {}: {}/{} slots used, mean demand {:.0} mA",
            load.network,
            load.registered.len(),
            load.slot_capacity,
            load.demand_ma
        );
    }
    let plan = plan_balance(&loads);
    println!(
        "  plan: {} relocations, peak utilisation {:.0}% -> {:.0}%",
        plan.relocations.len(),
        plan.peak_utilisation_before * 100.0,
        plan.peak_utilisation_after * 100.0
    );
    for r in &plan.relocations {
        println!("    steer {} from {} to {}", r.device, r.from, r.to);
    }

    println!("\n== device-level consensus (future-work extension) ==");
    let mut consensus = QuorumConsensus::majority(fleet.iter().copied());
    let entries = home.ledger().all_entries();
    let sample: Vec<Vec<u8>> = entries.iter().take(20).map(|e| e.to_bytes()).collect();
    consensus
        .propose(fleet[0], 1_000_000, sample)
        .expect("proposal opens");
    let mut outcome = None;
    for &voter in fleet.iter().skip(1) {
        match consensus.vote(voter, Vote::Approve) {
            Ok(o) => {
                outcome = Some(o);
                if !matches!(o, rtem_core::consensus::RoundOutcome::Pending) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    println!(
        "  quorum {} of {} devices, outcome {:?}, messages per round {}",
        consensus.quorum(),
        fleet.len(),
        outcome,
        consensus.messages_per_round()
    );
}
