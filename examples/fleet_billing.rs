//! Fleet billing: a larger deployment than the paper's testbed — one
//! operator with eight e-scooters homed in Network 1 roaming over three
//! networks — showing consolidated per-device billing, the load-balancing
//! extension and the device-level consensus extension in one run.
//!
//! The whole deployment is one declarative `ScenarioSpec`: a single home
//! network with the fleet, two initially-empty destination networks, and a
//! script that sends five scooters roaming.
//!
//! ```bash
//! cargo run --example fleet_billing
//! ```

use rtem::consensus::{QuorumConsensus, RoundOutcome, Vote};
use rtem::loadbalance::{plan_balance, NetworkLoad};
use rtem::prelude::*;

fn main() {
    let fleet: Vec<DeviceId> = (0..8).map(|j| ScenarioSpec::device_id(0, j)).collect();
    let networks: Vec<AggregatorAddr> = (0..3).map(ScenarioSpec::network_addr).collect();

    // Eight e-scooters homed in network 1; networks 2 and 3 start empty.
    // After half a minute, five scooters ride off and recharge elsewhere.
    let mut spec = ScenarioSpec::single_network(8, 99)
        .with_load(DeviceLoad::EScooter)
        .with_empty_networks(2)
        .with_verification_window(SimDuration::from_secs(5))
        .with_horizon(SimDuration::from_secs(180));
    for (i, &id) in fleet.iter().take(5).enumerate() {
        let destination = networks[1 + i % 2];
        spec = spec
            .unplug_at(SimTime::from_secs(30 + i as u64 * 5), id)
            .plug_in_at(SimTime::from_secs(55 + i as u64 * 5), id, destination);
    }

    let handle = Experiment::new(spec)
        .start_probed(RecordingProbe::default())
        .expect("valid spec");
    let (report, probe) = handle.finish_probed();

    println!("== fleet journey (observed by the probe) ==");
    println!(
        "  {} plug-ins, {} unplugs, {} temporary/home handshakes, {} blocks sealed",
        probe.plug_ins(),
        probe.unplugs(),
        probe.handshakes_completed(),
        probe.blocks_sealed(),
    );

    println!("\n== consolidated fleet bill at the home aggregator (network 1) ==");
    let mut total_cost = 0.0;
    for bill in &report.bills {
        total_cost += bill.cost;
        println!(
            "  {}: {:>8.2} mWh ({:>5.1}% roamed), {} records",
            bill.device,
            bill.energy_at(Millivolts::usb_bus()).value(),
            bill.roamed_percent(),
            bill.records
        );
    }
    println!("  fleet total cost: {total_cost:.3} units");

    println!("\n== load-balancing proposal (future-work extension) ==");
    let world = report.world();
    let loads: Vec<NetworkLoad> = world
        .network_addresses()
        .into_iter()
        .map(|addr| {
            let agg = world.aggregator(addr).expect("network");
            let registered: Vec<DeviceId> = agg.registry().iter().map(|m| m.device).collect();
            NetworkLoad {
                network: addr,
                slot_capacity: 10,
                mobile: registered.clone(),
                registered,
                demand_ma: agg.network_series().stats().mean,
            }
        })
        .collect();
    for load in &loads {
        println!(
            "  {}: {}/{} slots used, mean demand {:.0} mA",
            load.network,
            load.registered.len(),
            load.slot_capacity,
            load.demand_ma
        );
    }
    let plan = plan_balance(&loads);
    println!(
        "  plan: {} relocations, peak utilisation {:.0}% -> {:.0}%",
        plan.relocations.len(),
        plan.peak_utilisation_before * 100.0,
        plan.peak_utilisation_after * 100.0
    );
    for r in &plan.relocations {
        println!("    steer {} from {} to {}", r.device, r.from, r.to);
    }

    println!("\n== device-level consensus (future-work extension) ==");
    let home = world.aggregator(networks[0]).expect("home network");
    let mut consensus = QuorumConsensus::majority(fleet.iter().copied());
    let entries = home.ledger().all_entries();
    let sample: Vec<Vec<u8>> = entries.iter().take(20).map(|e| e.to_bytes()).collect();
    consensus
        .propose(fleet[0], 1_000_000, sample)
        .expect("proposal opens");
    let mut outcome = None;
    for &voter in fleet.iter().skip(1) {
        match consensus.vote(voter, Vote::Approve) {
            Ok(o) => {
                outcome = Some(o);
                if !matches!(o, RoundOutcome::Pending) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    println!(
        "  quorum {} of {} devices, outcome {:?}, messages per round {}",
        consensus.quorum(),
        fleet.len(),
        outcome,
        consensus.messages_per_round()
    );
}
