//! The paper's motivating example: an e-scooter charges at home (Network 1),
//! is ridden to another location, and recharges in a host network
//! (Network 2) while its home network keeps billing it — declared entirely
//! as a scripted `ScenarioSpec`, with a `Probe` observing the journey's
//! milestones as the run streams.
//!
//! Prints the Fig. 6-style trace seen by the home aggregator and the
//! Thandshake breakdown of the temporary registration.
//!
//! ```bash
//! cargo run --example escooter_mobility
//! ```

use rtem::metrics::device_trace;
use rtem::prelude::*;

fn main() {
    let scooter = ScenarioSpec::device_id(0, 0);
    let home = ScenarioSpec::network_addr(0);
    let host = ScenarioSpec::network_addr(1);
    let unplug_at = SimTime::from_secs(60);
    let replug_at = SimTime::from_secs(85);

    let spec = ScenarioSpec::paper_testbed(7)
        .with_load(DeviceLoad::EScooter)
        .with_horizon(SimDuration::from_secs(175))
        .unplug_at(unplug_at, scooter)
        .plug_in_at(replug_at, scooter, host);

    println!(
        "e-scooter {} charges in {} until t = {} s, rides for {} s, then recharges in {}",
        scooter,
        home,
        unplug_at.as_secs_f64(),
        (replug_at.as_secs_f64() - unplug_at.as_secs_f64()),
        host
    );

    let handle = Experiment::new(spec)
        .start_probed(RecordingProbe::default())
        .expect("valid spec");
    let (report, probe) = handle.finish_probed();

    println!("\n== journey milestones (observed by the probe) ==");
    for event in probe.events() {
        match event {
            RunEvent::Unplugged { at, device } if *device == scooter => {
                println!("  t = {:>6.1} s: unplugged from {home}", at.as_secs_f64());
            }
            RunEvent::PluggedIn {
                at,
                device,
                network,
            } if *device == scooter && *at > SimTime::ZERO => {
                println!("  t = {:>6.1} s: plugged into {network}", at.as_secs_f64());
            }
            RunEvent::HandshakeCompleted {
                at,
                device,
                breakdown,
                ..
            } if *device == scooter => {
                println!(
                    "  t = {:>6.1} s: handshake completed in {:.2} s",
                    at.as_secs_f64(),
                    breakdown.total().as_secs_f64()
                );
            }
            _ => {}
        }
    }

    if let Some(handshake) = report
        .world()
        .device(scooter)
        .and_then(|d| d.last_handshake())
    {
        println!("\n== temporary membership handshake in the host network ==");
        println!(
            "  Wi-Fi scan        : {:>7.2} s",
            handshake.scan.as_secs_f64()
        );
        println!(
            "  association/DHCP  : {:>7.2} s",
            handshake.association.as_secs_f64()
        );
        println!(
            "  MQTT connect      : {:>7.2} s",
            handshake.broker_connect.as_secs_f64()
        );
        println!(
            "  registration+verify: {:>6.2} s",
            handshake.registration.as_secs_f64()
        );
        println!(
            "  Thandshake total  : {:>7.2} s",
            handshake.total().as_secs_f64()
        );
    }

    println!("\n== consolidated bill at the home aggregator ==");
    let bill = report
        .bill(scooter)
        .expect("the scooter was billed at home");
    println!(
        "  total charge   : {:.1} mA·s ({} backfilled records)",
        bill.charge_uas as f64 / 1000.0,
        bill.backfilled_records
    );
    println!(
        "  of which roamed: {:.1} mA·s ({:.1}%) collected by {}",
        bill.roaming_charge_uas as f64 / 1000.0,
        bill.roamed_percent(),
        host
    );

    if let Some(view) = device_trace(report.world(), home, scooter) {
        println!("\n== Fig. 6: consumption of the e-scooter as seen by {home} ==");
        println!("(5 s means of the reported current; gaps are the idle transit)");
        let mut bucket_start = 0.0f64;
        let mut bucket: Vec<f64> = Vec::new();
        for &(t, v) in &view.points {
            if t - bucket_start >= 5.0 {
                if !bucket.is_empty() {
                    let mean: f64 = bucket.iter().sum::<f64>() / bucket.len() as f64;
                    let bar = "#".repeat((mean / 40.0).min(60.0) as usize);
                    println!("  t={:>6.1}s {:>8.1} mA |{}", bucket_start, mean, bar);
                }
                bucket.clear();
                bucket_start = (t / 5.0).floor() * 5.0;
            }
            bucket.push(v);
        }
        if !bucket.is_empty() {
            let mean: f64 = bucket.iter().sum::<f64>() / bucket.len() as f64;
            let bar = "#".repeat((mean / 40.0).min(60.0) as usize);
            println!("  t={:>6.1}s {:>8.1} mA |{}", bucket_start, mean, bar);
        }
    }
}
