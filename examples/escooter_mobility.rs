//! The paper's motivating example: an e-scooter charges at home (Network 1),
//! is ridden to another location, and recharges in a host network
//! (Network 2) while its home network keeps billing it.
//!
//! Prints the Fig. 6-style trace seen by the home aggregator and the
//! Thandshake breakdown of the temporary registration.
//!
//! ```bash
//! cargo run --example escooter_mobility
//! ```

use rtem_core::mobility::{run_mobility, MobilityConfig};
use rtem_core::scenario::{DeviceLoad, ScenarioBuilder};
use rtem_sim::time::{SimDuration, SimTime};

fn main() {
    let mut config = MobilityConfig::testbed(7);
    config.scenario = ScenarioBuilder::paper_testbed(7).with_load(DeviceLoad::EScooter);
    config.unplug_at = SimTime::from_secs(60);
    config.transit = SimDuration::from_secs(25);
    config.settle = SimDuration::from_secs(90);

    println!(
        "e-scooter {} charges in {} until t = {} s, rides for {} s, then recharges in {}",
        config.mobile_device,
        config.home,
        config.unplug_at.as_secs_f64(),
        config.transit.as_secs_f64(),
        config.destination
    );

    let outcome = run_mobility(&config);

    if let Some(handshake) = outcome.handshake {
        println!("\n== temporary membership handshake in the host network ==");
        println!("  Wi-Fi scan        : {:>7.2} s", handshake.scan.as_secs_f64());
        println!("  association/DHCP  : {:>7.2} s", handshake.association.as_secs_f64());
        println!("  MQTT connect      : {:>7.2} s", handshake.broker_connect.as_secs_f64());
        println!("  registration+verify: {:>6.2} s", handshake.registration.as_secs_f64());
        println!("  Thandshake total  : {:>7.2} s", handshake.total().as_secs_f64());
    }

    println!("\n== consolidated bill at the home aggregator ==");
    println!(
        "  total charge   : {:.1} mA·s ({} backfilled records)",
        outcome.total_charge_uas as f64 / 1000.0,
        outcome.backfilled_records
    );
    println!(
        "  of which roamed: {:.1} mA·s collected by {}",
        outcome.roaming_charge_uas as f64 / 1000.0,
        config.destination
    );

    if let Some(view) = &outcome.home_view {
        println!("\n== Fig. 6: consumption of the e-scooter as seen by {} ==", config.home);
        println!("(1 s means of the reported current; gaps are the idle transit)");
        let mut bucket_start = 0.0f64;
        let mut bucket: Vec<f64> = Vec::new();
        for &(t, v) in &view.points {
            if t - bucket_start >= 5.0 {
                if !bucket.is_empty() {
                    let mean: f64 = bucket.iter().sum::<f64>() / bucket.len() as f64;
                    let bar = "#".repeat((mean / 40.0).min(60.0) as usize);
                    println!("  t={:>6.1}s {:>8.1} mA |{}", bucket_start, mean, bar);
                }
                bucket.clear();
                bucket_start = (t / 5.0).floor() * 5.0;
            }
            bucket.push(v);
        }
        if !bucket.is_empty() {
            let mean: f64 = bucket.iter().sum::<f64>() / bucket.len() as f64;
            let bar = "#".repeat((mean / 40.0).min(60.0) as usize);
            println!("  t={:>6.1}s {:>8.1} mA |{}", bucket_start, mean, bar);
        }
    }
}
