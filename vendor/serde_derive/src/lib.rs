//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace builds in environments without network access, so the real
//! `serde` cannot be fetched. The `rtem` crates only use
//! `#[derive(Serialize, Deserialize)]` as inert markers (nothing is actually
//! serialized in-tree yet), so these derives simply expand to nothing.
//! Swapping the `vendor/serde*` path dependencies for the real crates.io
//! packages requires no source changes.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: expands to an empty token stream.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: expands to an empty token stream.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
