//! Offline stand-in for the `serde` facade crate.
//!
//! Provides the two trait names the workspace imports plus the inert derive
//! macros from [`serde_derive`]. No (de)serialization machinery is included:
//! the in-tree types only tag themselves as serializable for future wire /
//! storage formats. Replace the `vendor/serde*` path dependencies with the
//! real crates.io packages to get actual serialization — no source changes
//! are needed in the `rtem` crates.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

// The derives expand to nothing, so blanket impls keep `T: Serialize` /
// `T: Deserialize` bounds satisfiable — code written against real serde's
// bounds still compiles against this stub.
impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
