//! Offline stand-in for the parts of the `rand` crate the workspace uses.
//!
//! `rtem_sim::rng::SimRng` implements [`RngCore`] so it composes with
//! `rand`-style distribution adapters; the simulation itself never calls
//! into `rand`. This stub keeps that trait implementation compiling in
//! environments without network access. Swap the `vendor/rand` path
//! dependency for the real crates.io package to interoperate with the wider
//! `rand` ecosystem.

#![forbid(unsafe_code)]

use core::fmt;

/// Error type returned by fallible RNG operations.
///
/// Mirrors `rand::Error` closely enough for trait signatures; deterministic
/// in-memory generators never produce it.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core trait every random number generator implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
