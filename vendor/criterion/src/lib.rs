//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset of the criterion API the `rtem-bench` targets use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, the `criterion_group!` / `criterion_main!` macros) with a
//! simple wall-clock measurement loop: warm up briefly, run the closure in
//! growing batches until the measurement budget is spent, and print the mean
//! iteration time (plus derived throughput when configured). There is no
//! statistical analysis, HTML report or regression detection — swap the
//! `vendor/criterion` path dependency for the real crates.io package to get
//! those.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark context handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Units the measured time is normalized against when reporting throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples to collect (minimum 1).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the throughput used to derive a rate from the measured time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up pass: one batch, also calibrates the batch size.
        routine(&mut bencher);
        let single = bencher.mean();
        let budget = self.measurement_time.min(Duration::from_secs(10));
        let per_sample = budget.as_secs_f64() / self.sample_size as f64;
        let batch = if single > Duration::ZERO {
            ((per_sample / single.as_secs_f64()).ceil() as u64).clamp(1, 1_000_000)
        } else {
            1_000
        };

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            bencher.iters = batch;
            bencher.elapsed = Duration::ZERO;
            routine(&mut bencher);
            total += bencher.elapsed;
            iters += batch;
        }
        let mean = if iters > 0 {
            // f64 division: long budgets on sub-ns routines can push the
            // iteration count past u32::MAX, which Duration::div truncates.
            Duration::from_secs_f64(total.as_secs_f64() / iters as f64)
        } else {
            single
        };
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => format!(
                "  ({:.1} MiB/s)",
                n as f64 / mean.as_secs_f64().max(1e-12) / (1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64().max(1e-12))
            }
        });
        println!(
            "{:<40} {:>12.3?} /iter over {} iters{}",
            id.name,
            mean,
            iters.max(1),
            rate.unwrap_or_default()
        );
        self
    }

    /// Measures a routine that takes an input value by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (a no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

/// Timer handle passed to the benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the current batch size, timing the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(self.elapsed.as_secs_f64() / self.iters as f64)
        }
    }
}

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(20));
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0, "the routine must actually execute");
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("scale", 42);
        assert_eq!(id.name, "scale/42");
    }
}
