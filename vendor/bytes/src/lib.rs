//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API the workspace uses: the
//! cheaply-cloneable [`Bytes`] view, the growable [`BytesMut`] builder, and
//! the [`Buf`] / [`BufMut`] cursor traits with the little-endian accessors
//! the metering wire format needs. Unlike the real crate there is no
//! vectored I/O or zero-copy split machinery — [`Bytes`] clones share one
//! reference-counted allocation, which is all the simulated broker and
//! packet codec require. Swap the `vendor/bytes` path dependency for the
//! real crates.io package for the full API.

#![forbid(unsafe_code)]

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous slice of memory.
///
/// Clones share the same reference-counted allocation; [`Buf`] reads advance
/// a per-handle cursor without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Creates a `Bytes` from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view of `self` bounded by `range` (indices relative to
    /// the current view).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The bytes of the current view as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Bytes {
        let end = vec.len();
        Bytes {
            data: Arc::from(vec.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Bytes {
        Bytes::from(slice.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] once written.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a buffer of bytes through an advancing cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes from the cursor into `dst`, advancing past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Write access to a growable buffer of bytes.
pub trait BufMut {
    /// Appends a slice to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_integers() {
        let mut buf = BytesMut::with_capacity(15);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 15);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u16_le(), 0x1234);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), 0x0102_0304_0506_0708);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn clones_are_independent_cursors() {
        let original = Bytes::from(vec![1, 2, 3, 4]);
        let mut reader = original.clone();
        assert_eq!(reader.get_u8(), 1);
        assert_eq!(original.len(), 4, "original view unaffected");
        assert_eq!(reader.remaining(), 3);
    }

    #[test]
    fn slice_is_relative_to_view() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = bytes.slice(2..5);
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        assert_eq!(mid.slice(1..).as_slice(), &[3, 4]);
        assert_eq!(bytes.slice(0..bytes.len() - 3).as_slice(), &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
